#include "src/core/cell_worker.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <type_traits>
#include <utility>

#include "src/util/ckpt.h"

namespace presto {

int CellWorker::Serve() {
  while (true) {
    auto request = channel_->Recv();
    if (!request.ok()) {
      // The parent exited or closed the channel: a clean worker exit, so a
      // normal shutdown never trips process-death detection (or LeakSanitizer).
      return 0;
    }
    FedFrame reply;
    reply.type = FedFrameType::kAck;
    const Status s = Dispatch(*request, &reply);
    if (!s.ok()) {
      ByteWriter w;
      CkptWrite(w, s);
      reply.type = FedFrameType::kError;
      reply.payload = w.TakeBuffer();
    }
    if (request->type == FedFrameType::kShutdown) {
      // Requested even if the kAck below fails to send — the parent is leaving
      // either way, and the --listen loop must not re-accept after a shutdown.
      shutdown_requested_ = true;
    }
    if (!channel_->Send(reply).ok()) {
      return 0;
    }
    if (request->type == FedFrameType::kShutdown) {
      return 0;
    }
  }
}

Status CellWorker::Dispatch(const FedFrame& request, FedFrame* reply) {
  const span<const uint8_t> payload(request.payload);
  if (request.type == FedFrameType::kBootstrap) {
    return HandleBootstrap(payload);
  }
  if (request.type == FedFrameType::kShutdown) {
    return OkStatus();  // reply kAck, then Serve leaves its loop
  }
  if (!bootstrapped_) {
    return FailedPreconditionError("cell_worker: not bootstrapped");
  }
  switch (request.type) {
    case FedFrameType::kStart:
      PRESTO_RETURN_IF_ERROR(HandleStart());
      break;
    case FedFrameType::kAttachDriver:
      return HandleAttachDriver(payload, reply);
    case FedFrameType::kStartDriver:
      PRESTO_RETURN_IF_ERROR(HandleStartDriver(payload));
      break;
    case FedFrameType::kStep:
      PRESTO_RETURN_IF_ERROR(HandleStep(payload));
      break;
    case FedFrameType::kInject:
      PRESTO_RETURN_IF_ERROR(HandleInject(payload));
      break;
    case FedFrameType::kKillCell:
      PRESTO_RETURN_IF_ERROR(HandleKillCell(payload));
      break;
    case FedFrameType::kReviveCell:
      PRESTO_RETURN_IF_ERROR(HandleReviveCell(payload));
      break;
    case FedFrameType::kKillProxy:
      PRESTO_RETURN_IF_ERROR(HandleProxyOp(payload, /*kill=*/true));
      break;
    case FedFrameType::kReviveProxy:
      PRESTO_RETURN_IF_ERROR(HandleProxyOp(payload, /*kill=*/false));
      break;
    case FedFrameType::kMigrateSensor:
      PRESTO_RETURN_IF_ERROR(HandleMigrateSensor(payload));
      break;
    case FedFrameType::kSnapshot:
      return HandleSnapshot(reply);
    case FedFrameType::kCkptSave:
      return HandleCkptSave(reply);
    case FedFrameType::kCkptLoad:
      return HandleCkptLoad(payload);
    default:
      return InvalidArgumentError("cell_worker: unexpected frame type");
  }
  // Every control op replies with the mail (and host-probe completions) it
  // generated, so the parent's routing never waits an extra barrier.
  reply->payload = ControlReply();
  return OkStatus();
}

Status CellWorker::HandleBootstrap(span<const uint8_t> payload) {
  if (bootstrapped_) {
    return FailedPreconditionError("cell_worker: already bootstrapped");
  }
  ByteReader r{payload};
  auto raw = r.ReadBytes();
  if (!raw.ok()) {
    return raw.status();
  }
  static_assert(std::is_trivially_copyable<FederationConfig>::value,
                "FederationConfig rides the wire as raw bytes");
  if (raw->size() != sizeof(FederationConfig)) {
    return DataLossError("cell_worker: bootstrap config size mismatch");
  }
  std::memcpy(&config_, raw->data(), sizeof(FederationConfig));
  CKPT_READ(r, worker_index_);
  CKPT_READ(r, num_workers_);
  if (r.remaining() != 0) {
    return DataLossError("cell_worker: bootstrap trailing bytes");
  }
  if (num_workers_ < 1 || worker_index_ < 0 || worker_index_ >= num_workers_ ||
      config_.num_cells < 1 || config_.cell.num_proxies < 1 ||
      config_.cell.sensors_per_proxy < 1 || config_.epoch <= 0) {
    return InvalidArgumentError("cell_worker: bad bootstrap parameters");
  }
  for (int c = worker_index_; c < config_.num_cells; c += num_workers_) {
    hosted_.push_back(c);
    DeploymentConfig cell_config = config_.cell;
    cell_config.seed = FederationCellSeed(config_.seed, c);
    cells_.push_back(std::make_unique<Deployment>(cell_config));
    // Pairwise construction keeps each simulator's sink-registration order
    // identical to the in-process federation — the checkpoint sink-id contract.
    cores_.push_back(std::make_unique<FedCell>(c, &config_, cells_.back().get()));
  }
  bootstrapped_ = true;
  return OkStatus();
}

Status CellWorker::HandleStart() {
  for (auto& cell : cells_) {
    cell->Start();
  }
  return OkStatus();
}

Status CellWorker::HandleAttachDriver(span<const uint8_t> payload, FedFrame* reply) {
  ByteReader r{payload};
  int origin = 0;
  CKPT_READ(r, origin);
  auto raw = r.ReadBytes();
  if (!raw.ok()) {
    return raw.status();
  }
  if (r.remaining() != 0) {
    return DataLossError("cell_worker: attach-driver trailing bytes");
  }
  static_assert(std::is_trivially_copyable<QueryDriverParams>::value,
                "QueryDriverParams rides the wire as raw bytes");
  if (raw->size() != sizeof(QueryDriverParams)) {
    return DataLossError("cell_worker: driver params size mismatch");
  }
  QueryDriverParams params{};
  std::memcpy(&params, raw->data(), sizeof(QueryDriverParams));
  auto slot = SlotOf(origin);
  if (!slot.ok()) {
    return slot.status();
  }
  if (params.mix.num_sensors > 0 &&
      params.mix.num_sensors > config_.num_cells * config_.cell.num_proxies *
                                   config_.cell.sensors_per_proxy) {
    return InvalidArgumentError("driver namespace exceeds the federation population");
  }
  const int driver_slot =
      cores_[static_cast<size_t>(*slot)]->AttachDriver(params);
  ByteWriter w;
  w.WriteVarU64(static_cast<uint64_t>(driver_slot));
  reply->payload = w.TakeBuffer();
  return OkStatus();
}

Status CellWorker::HandleStartDriver(span<const uint8_t> payload) {
  ByteReader r{payload};
  int cell = 0, driver_slot = 0;
  Duration duration = 0;
  CKPT_READ(r, cell);
  CKPT_READ(r, driver_slot);
  CKPT_READ(r, duration);
  if (r.remaining() != 0) {
    return DataLossError("cell_worker: start-driver trailing bytes");
  }
  auto slot = SlotOf(cell);
  if (!slot.ok()) {
    return slot.status();
  }
  FedCell& core = *cores_[static_cast<size_t>(*slot)];
  if (driver_slot < 0 || driver_slot >= core.num_drivers()) {
    return InvalidArgumentError("cell_worker: driver slot out of range");
  }
  core.StartDriver(driver_slot, duration);
  return OkStatus();
}

Status CellWorker::HandleStep(span<const uint8_t> payload) {
  ByteReader r{payload};
  SimTime barrier = 0, end = 0;
  CKPT_READ(r, barrier);
  CKPT_READ(r, end);
  std::vector<FedMail> mail;
  CKPT_READ(r, mail);
  if (r.remaining() != 0) {
    return DataLossError("cell_worker: step trailing bytes");
  }
  for (FedMail& m : mail) {
    auto slot = SlotOf(m.target_cell);
    if (!slot.ok()) {
      return slot.status();
    }
    if (m.op != kFedOpExecute && m.op != kFedOpComplete) {
      return DataLossError("cell_worker: bad mail op in step");
    }
    cores_[static_cast<size_t>(*slot)]->DeliverMail(std::move(m), barrier);
  }
  for (auto& cell : cells_) {
    cell->RunUntil(end);
  }
  return OkStatus();
}

Status CellWorker::HandleInject(span<const uint8_t> payload) {
  ByteReader r{payload};
  int origin = 0;
  uint64_t token = 0;
  FederationQuerySpec spec;
  CKPT_READ(r, origin);
  CKPT_READ(r, token);
  CKPT_READ(r, spec);
  if (r.remaining() != 0) {
    return DataLossError("cell_worker: inject trailing bytes");
  }
  auto slot = SlotOf(origin);
  if (!slot.ok()) {
    return slot.status();
  }
  const int total = config_.num_cells * config_.cell.num_proxies *
                    config_.cell.sensors_per_proxy;
  if (spec.fed_sensor < 0 || spec.fed_sensor >= total) {
    return InvalidArgumentError("cell_worker: inject sensor out of range");
  }
  FedCell::Pending q;
  q.origin = FedCell::Origin::kHost;
  q.host_token = token;
  // Fail-fast (dead target) and same-instant completions land in host_done_ and
  // ride back in this very reply's control fold.
  cores_[static_cast<size_t>(*slot)]->Issue(spec, std::move(q));
  return OkStatus();
}

Status CellWorker::HandleKillCell(span<const uint8_t> payload) {
  ByteReader r{payload};
  int cell = 0;
  CKPT_READ(r, cell);
  if (r.remaining() != 0) {
    return DataLossError("cell_worker: kill-cell trailing bytes");
  }
  if (cell < 0 || cell >= config_.num_cells) {
    return InvalidArgumentError("cell_worker: cell index out of range");
  }
  // Every hosted gateway marks the cell down and fails its pending queries
  // toward it (hosted-cell ascending, qid ascending within — deterministic).
  for (auto& core : cores_) {
    core->SetCellDown(cell, true);
    core->FailPendingToward(cell);
  }
  auto slot = SlotOf(cell);
  if (slot.ok()) {
    Deployment& victim = *cells_[static_cast<size_t>(*slot)];
    for (int p = 0; p < victim.config().num_proxies; ++p) {
      victim.KillProxy(p);
    }
  }
  return OkStatus();
}

Status CellWorker::HandleReviveCell(span<const uint8_t> payload) {
  ByteReader r{payload};
  int cell = 0;
  CKPT_READ(r, cell);
  if (r.remaining() != 0) {
    return DataLossError("cell_worker: revive-cell trailing bytes");
  }
  if (cell < 0 || cell >= config_.num_cells) {
    return InvalidArgumentError("cell_worker: cell index out of range");
  }
  auto slot = SlotOf(cell);
  if (slot.ok()) {
    Deployment& revived = *cells_[static_cast<size_t>(*slot)];
    for (int p = 0; p < revived.config().num_proxies; ++p) {
      revived.ReviveProxy(p);
    }
  }
  for (auto& core : cores_) {
    core->SetCellDown(cell, false);
  }
  return OkStatus();
}

Status CellWorker::HandleProxyOp(span<const uint8_t> payload, bool kill) {
  ByteReader r{payload};
  int cell = 0, proxy = 0;
  CKPT_READ(r, cell);
  CKPT_READ(r, proxy);
  if (r.remaining() != 0) {
    return DataLossError("cell_worker: proxy-op trailing bytes");
  }
  auto slot = SlotOf(cell);
  if (!slot.ok()) {
    return slot.status();
  }
  Deployment& target = *cells_[static_cast<size_t>(*slot)];
  if (proxy < 0 || proxy >= target.config().num_proxies) {
    return InvalidArgumentError("cell_worker: proxy index out of range");
  }
  if (kill) {
    target.KillProxy(proxy);
  } else {
    target.ReviveProxy(proxy);
  }
  return OkStatus();
}

Status CellWorker::HandleMigrateSensor(span<const uint8_t> payload) {
  ByteReader r{payload};
  int cell = 0, global_index = 0, new_owner = 0;
  CKPT_READ(r, cell);
  CKPT_READ(r, global_index);
  CKPT_READ(r, new_owner);
  if (r.remaining() != 0) {
    return DataLossError("cell_worker: migrate-sensor trailing bytes");
  }
  auto slot = SlotOf(cell);
  if (!slot.ok()) {
    return slot.status();
  }
  Deployment& target = *cells_[static_cast<size_t>(*slot)];
  if (global_index < 0 || global_index >= target.total_sensors() ||
      new_owner < 0 || new_owner >= target.config().num_proxies) {
    return InvalidArgumentError("cell_worker: migrate-sensor argument out of range");
  }
  target.MigrateSensor(global_index, new_owner);
  return OkStatus();
}

Status CellWorker::HandleSnapshot(FedFrame* reply) {
  ByteWriter w;
  w.WriteVarU64(cores_.size());
  for (size_t i = 0; i < cores_.size(); ++i) {
    FedCell& core = *cores_[i];
    FedCellSnapshot snap;
    snap.sim_fingerprint = cells_[i]->sim().fingerprint();
    snap.events = cells_[i]->sim().events_executed();
    snap.counters = core.counters();
    snap.trunks = core.TrunkTotals();
    for (int d = 0; d < core.num_drivers(); ++d) {
      snap.drivers.push_back(core.driver(d).stats());
    }
    CkptWrite(w, snap);
  }
  reply->payload = w.TakeBuffer();
  return OkStatus();
}

Status CellWorker::HandleCkptSave(FedFrame* reply) {
  Checkpoint sub;
  for (size_t i = 0; i < cores_.size(); ++i) {
    PRESTO_RETURN_IF_ERROR(SaveCellCheckpoint(*cells_[i], *cores_[i], &sub));
  }
  reply->payload = sub.Encode();
  return OkStatus();
}

Status CellWorker::HandleCkptLoad(span<const uint8_t> payload) {
  ByteReader r{payload};
  auto blob = r.ReadBytes();
  if (!blob.ok()) {
    return blob.status();
  }
  std::vector<uint8_t> down;
  PRESTO_RETURN_IF_ERROR(
      ReadCellBitmap(r, static_cast<size_t>(config_.num_cells), &down));
  if (r.remaining() != 0) {
    return DataLossError("cell_worker: ckpt-load trailing bytes");
  }
  auto ckpt = Checkpoint::Decode(span<const uint8_t>(*blob));
  if (!ckpt.ok()) {
    return ckpt.status();
  }
  for (size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->RestoreCellDown(down);
    cores_[i]->TakeOutbox();  // undrained mail belongs to the orchestrator
    PRESTO_RETURN_IF_ERROR(LoadCellCheckpoint(*cells_[i], *cores_[i], *ckpt));
  }
  return OkStatus();
}

Result<int> CellWorker::SlotOf(int cell_index) const {
  if (cell_index >= worker_index_ && cell_index < config_.num_cells &&
      cell_index % num_workers_ == worker_index_) {
    return (cell_index - worker_index_) / num_workers_;
  }
  return InvalidArgumentError("cell_worker: cell is not hosted by this worker");
}

std::vector<uint8_t> CellWorker::ControlReply() {
  std::vector<FedMail> mail;
  std::vector<FedCell::HostDone> done;
  for (auto& core : cores_) {
    std::vector<FedMail> box = core->TakeOutbox();
    std::move(box.begin(), box.end(), std::back_inserter(mail));
    std::vector<FedCell::HostDone> host = core->TakeHostDone();
    std::move(host.begin(), host.end(), std::back_inserter(done));
  }
  return EncodeFedControlReply(mail, done);
}

std::string ResolveCellWorkerBinary() {
  // PRESTO_CELL_BIN wins, else next to this executable, else whatever PATH
  // resolves.
  if (const char* env = std::getenv("PRESTO_CELL_BIN")) {
    if (env[0] != '\0') {
      return env;
    }
  }
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n > 0) {
    self[n] = '\0';
    std::string dir(self);
    const size_t slash = dir.rfind('/');
    if (slash != std::string::npos) {
      return dir.substr(0, slash + 1) + "presto_cell";
    }
  }
  return "presto_cell";
}

int RunCellWorkerListenLoop(uint16_t port, Duration handshake_deadline,
                            bool once) {
  uint16_t bound_port = 0;
  auto listen_fd = TcpListen("0.0.0.0", port, &bound_port);
  if (!listen_fd.ok()) {
    std::fprintf(stderr, "presto_cell: %s\n", listen_fd.status().message().c_str());
    return 1;
  }
  // The spawn helpers (and human operators) read this line to learn the
  // kernel-chosen port; keep the format in lockstep with SpawnCellWorkerListening.
  std::printf("PRESTO_CELL_LISTENING %u\n", static_cast<unsigned>(bound_port));
  std::fflush(stdout);
  while (true) {
    auto conn = TcpAccept(*listen_fd, /*deadline=*/0);
    if (!conn.ok()) {
      std::fprintf(stderr, "presto_cell: %s\n", conn.status().message().c_str());
      ::close(*listen_fd);
      return 1;
    }
    bool shutdown = false;
    {
      FrameChannel channel(*conn);
      // Only the hello is deadlined: a connector that never completes the
      // handshake (half-open, slow-loris) must not wedge the accept loop. After
      // adoption the orchestrator paces the frames, and its death arrives as
      // EOF/RST — so Serve runs fully blocking, same as a fork-mode worker.
      channel.SetDeadline(handshake_deadline);
      auto hello = FedHelloServer(channel);
      if (!hello.ok()) {
        std::fprintf(stderr, "presto_cell: %s\n",
                     hello.status().message().c_str());
        continue;  // channel destructor closes the fd; keep listening
      }
      channel.SetDeadline(0);
      CellWorker worker(&channel);
      worker.Serve();
      shutdown = worker.shutdown_requested();
    }
    if (shutdown || once) {
      ::close(*listen_fd);
      return 0;
    }
    // EOF without shutdown: the orchestrator died or migrated away. Re-accept —
    // the next connection re-bootstraps this worker from scratch.
  }
}

Result<SpawnedCellWorker> SpawnCellWorkerListening() {
  int announce[2];
  if (::pipe(announce) != 0) {
    return InternalError("cell_worker spawn: pipe failed");
  }
  const std::string bin = ResolveCellWorkerBinary();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(announce[0]);
    ::close(announce[1]);
    return InternalError("cell_worker spawn: fork failed");
  }
  if (pid == 0) {
    ::close(announce[0]);
    ::dup2(announce[1], STDOUT_FILENO);
    ::close(announce[1]);
    ::execl(bin.c_str(), bin.c_str(), "--listen", "0", (char*)nullptr);
    _exit(127);
  }
  ::close(announce[1]);
  // Read the announcement line byte by byte; the worker writes it immediately
  // after binding, so a missing line means exec failed or the bind did.
  char line[256];
  size_t len = 0;
  while (len + 1 < sizeof(line)) {
    char c = 0;
    const ssize_t n = ::read(announce[0], &c, 1);
    if (n <= 0 || c == '\n') {
      break;
    }
    line[len++] = c;
  }
  line[len] = '\0';
  ::close(announce[0]);
  unsigned port = 0;
  if (std::sscanf(line, "PRESTO_CELL_LISTENING %u", &port) != 1 || port == 0 ||
      port > 65535) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return UnavailableError(
        "cell_worker spawn: no listen announcement (is the presto_cell binary "
        "next to this executable? set PRESTO_CELL_BIN otherwise)");
  }
  SpawnedCellWorker out;
  out.pid = pid;
  out.port = static_cast<uint16_t>(port);
  return out;
}

void StopCellWorker(SpawnedCellWorker& worker) {
  if (worker.pid <= 0) {
    return;
  }
  ::kill(static_cast<pid_t>(worker.pid), SIGKILL);
  ::waitpid(static_cast<pid_t>(worker.pid), nullptr, 0);
  worker.pid = -1;
}

}  // namespace presto
