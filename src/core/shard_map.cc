#include "src/core/shard_map.h"

#include <algorithm>
#include <set>

#include "src/util/assert.h"
#include "src/util/ckpt.h"

namespace presto {
namespace {

// SplitMix64 finalizer: cheap, stateless, and well-mixed — a sensor's shard never
// depends on deployment size history, only (index, proxy count).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Balanced contiguous blocks: the first `total % proxies` shards take one extra
// sensor, so sizes differ by at most one and no shard is ever empty. The old
// ceil-block split (g / ceil(total/proxies)) left trailing proxies with nothing
// whenever the population didn't divide evenly.
int GeographicOwner(int g, int total_sensors, int num_proxies) {
  const int base = total_sensors / num_proxies;
  const int remainder = total_sensors % num_proxies;
  const int big_span = remainder * (base + 1);  // sensors living in the larger shards
  if (g < big_span) {
    return g / (base + 1);
  }
  return remainder + (g - big_span) / base;
}

}  // namespace

const char* ShardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kGeographic:
      return "geographic";
    case ShardPolicy::kHash:
      return "hash";
  }
  return "?";
}

ShardMap::ShardMap(int num_proxies, int total_sensors, ShardPolicy policy,
                   int replication_factor)
    : num_proxies_(num_proxies),
      total_sensors_(total_sensors),
      policy_(policy),
      replication_factor_(replication_factor) {
  PRESTO_CHECK(num_proxies >= 1);
  PRESTO_CHECK(total_sensors >= 1);
  PRESTO_CHECK(replication_factor >= 1);
  owner_.resize(static_cast<size_t>(total_sensors));
  acting_.assign(static_cast<size_t>(total_sensors), -1);
  by_proxy_.resize(static_cast<size_t>(num_proxies));
  for (int g = 0; g < total_sensors; ++g) {
    int p;
    switch (policy) {
      case ShardPolicy::kHash:
        p = static_cast<int>(Mix64(static_cast<uint64_t>(g)) %
                             static_cast<uint64_t>(num_proxies));
        break;
      case ShardPolicy::kGeographic:
      default:
        p = GeographicOwner(g, total_sensors, num_proxies);
        break;
    }
    owner_[static_cast<size_t>(g)] = p;
    by_proxy_[static_cast<size_t>(p)].push_back(g);
  }
  served_by_ = by_proxy_;  // no failover at construction: served == owned

  // K-way replica sets: the next replication_factor - 1 distinct ring successors.
  const int standbys = std::min(replication_factor - 1, num_proxies - 1);
  replica_set_.resize(static_cast<size_t>(num_proxies));
  for (int p = 0; p < num_proxies; ++p) {
    std::vector<int>& set = replica_set_[static_cast<size_t>(p)];
    for (int k = 1; k <= standbys; ++k) {
      set.push_back((p + k) % num_proxies);
    }
    // Invariant (regression for the PR-1 self-replica hazard): a replica set never
    // contains its owner and never a duplicate entry.
    std::set<int> unique(set.begin(), set.end());
    PRESTO_CHECK_MSG(unique.size() == set.size(), "replica set contains duplicates");
    PRESTO_CHECK_MSG(unique.count(p) == 0, "replica set contains the owner");
  }
}

int ShardMap::OwnerOf(int global_sensor_index) const {
  PRESTO_CHECK(global_sensor_index >= 0 && global_sensor_index < total_sensors_);
  return owner_[static_cast<size_t>(global_sensor_index)];
}

const std::vector<int>& ShardMap::ReplicaSetOf(int proxy_index) const {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < num_proxies_);
  return replica_set_[static_cast<size_t>(proxy_index)];
}

int ShardMap::ReplicaOf(int proxy_index) const {
  const std::vector<int>& set = ReplicaSetOf(proxy_index);
  return set.empty() ? proxy_index : set.front();
}

const std::vector<int>& ShardMap::SensorsOf(int proxy_index) const {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < num_proxies_);
  return by_proxy_[static_cast<size_t>(proxy_index)];
}

namespace {

void MoveBetween(std::vector<int>& from, std::vector<int>& to, int g) {
  from.erase(std::find(from.begin(), from.end(), g));
  to.insert(std::upper_bound(to.begin(), to.end(), g), g);
}

}  // namespace

bool ShardMap::MigrateSensor(int global_sensor_index, int new_owner) {
  PRESTO_CHECK(global_sensor_index >= 0 && global_sensor_index < total_sensors_);
  PRESTO_CHECK(new_owner >= 0 && new_owner < num_proxies_);
  PRESTO_CHECK_MSG(!InFailover(global_sensor_index),
                   "hand the sensor back before migrating it");
  const int old_owner = owner_[static_cast<size_t>(global_sensor_index)];
  if (old_owner == new_owner) {
    return false;
  }
  MoveBetween(by_proxy_[static_cast<size_t>(old_owner)],
              by_proxy_[static_cast<size_t>(new_owner)], global_sensor_index);
  MoveBetween(served_by_[static_cast<size_t>(old_owner)],
              served_by_[static_cast<size_t>(new_owner)], global_sensor_index);
  owner_[static_cast<size_t>(global_sensor_index)] = new_owner;
  ++version_;
  return true;
}

int ShardMap::ActingOwnerOf(int global_sensor_index) const {
  PRESTO_CHECK(global_sensor_index >= 0 && global_sensor_index < total_sensors_);
  const int acting = acting_[static_cast<size_t>(global_sensor_index)];
  return acting >= 0 ? acting : owner_[static_cast<size_t>(global_sensor_index)];
}

bool ShardMap::InFailover(int global_sensor_index) const {
  PRESTO_CHECK(global_sensor_index >= 0 && global_sensor_index < total_sensors_);
  return acting_[static_cast<size_t>(global_sensor_index)] >= 0;
}

bool ShardMap::SetActingOwner(int global_sensor_index, int proxy_index) {
  PRESTO_CHECK(global_sensor_index >= 0 && global_sensor_index < total_sensors_);
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < num_proxies_);
  const int current = ActingOwnerOf(global_sensor_index);
  if (current == proxy_index) {
    return false;
  }
  MoveBetween(served_by_[static_cast<size_t>(current)],
              served_by_[static_cast<size_t>(proxy_index)], global_sensor_index);
  const int home = owner_[static_cast<size_t>(global_sensor_index)];
  acting_[static_cast<size_t>(global_sensor_index)] =
      proxy_index == home ? -1 : proxy_index;
  ++version_;
  return true;
}

const std::vector<int>& ShardMap::ServedBy(int proxy_index) const {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < num_proxies_);
  return served_by_[static_cast<size_t>(proxy_index)];
}

int ShardMap::MinShardSize() const {
  size_t min = by_proxy_[0].size();
  for (const auto& shard : by_proxy_) {
    min = std::min(min, shard.size());
  }
  return static_cast<int>(min);
}

int ShardMap::MaxShardSize() const {
  size_t max = 0;
  for (const auto& shard : by_proxy_) {
    max = std::max(max, shard.size());
  }
  return static_cast<int>(max);
}

void ShardMap::SaveState(ByteWriter& w) const {
  CkptWrite(w, version_);
  CkptWrite(w, owner_);
  CkptWrite(w, acting_);
}

Status ShardMap::LoadState(ByteReader& r) {
  CKPT_READ(r, version_);
  std::vector<int> owner;
  std::vector<int> acting;
  CKPT_READ(r, owner);
  CKPT_READ(r, acting);
  if (owner.size() != static_cast<size_t>(total_sensors_) ||
      acting.size() != owner.size()) {
    return DataLossError("shard map restore: table size mismatch");
  }
  for (size_t g = 0; g < owner.size(); ++g) {
    if (owner[g] < 0 || owner[g] >= num_proxies_ || acting[g] < -1 ||
        acting[g] >= num_proxies_) {
      return DataLossError("shard map restore: proxy index out of range");
    }
  }
  owner_ = std::move(owner);
  acting_ = std::move(acting);
  // Rebuild the inverse indices ascending — the invariant the incremental
  // maintenance preserves, so a restored map is indistinguishable from a live one.
  for (auto& shard : by_proxy_) {
    shard.clear();
  }
  for (auto& served : served_by_) {
    served.clear();
  }
  for (int g = 0; g < total_sensors_; ++g) {
    by_proxy_[static_cast<size_t>(owner_[static_cast<size_t>(g)])].push_back(g);
    served_by_[static_cast<size_t>(ActingOwnerOf(g))].push_back(g);
  }
  return OkStatus();
}

}  // namespace presto
