#include "src/core/shard_map.h"

#include <algorithm>

#include "src/util/assert.h"

namespace presto {
namespace {

// SplitMix64 finalizer: cheap, stateless, and well-mixed — a sensor's shard never
// depends on deployment size history, only (index, proxy count).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* ShardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kGeographic:
      return "geographic";
    case ShardPolicy::kHash:
      return "hash";
  }
  return "?";
}

ShardMap::ShardMap(int num_proxies, int total_sensors, ShardPolicy policy)
    : num_proxies_(num_proxies), total_sensors_(total_sensors), policy_(policy) {
  PRESTO_CHECK(num_proxies >= 1);
  PRESTO_CHECK(total_sensors >= 1);
  owner_.resize(static_cast<size_t>(total_sensors));
  by_proxy_.resize(static_cast<size_t>(num_proxies));
  const int block = (total_sensors + num_proxies - 1) / num_proxies;
  for (int g = 0; g < total_sensors; ++g) {
    int p;
    switch (policy) {
      case ShardPolicy::kHash:
        p = static_cast<int>(Mix64(static_cast<uint64_t>(g)) %
                             static_cast<uint64_t>(num_proxies));
        break;
      case ShardPolicy::kGeographic:
      default:
        p = g / block;
        break;
    }
    owner_[static_cast<size_t>(g)] = p;
    by_proxy_[static_cast<size_t>(p)].push_back(g);
  }
}

int ShardMap::OwnerOf(int global_sensor_index) const {
  PRESTO_CHECK(global_sensor_index >= 0 && global_sensor_index < total_sensors_);
  return owner_[static_cast<size_t>(global_sensor_index)];
}

int ShardMap::ReplicaOf(int proxy_index) const {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < num_proxies_);
  return (proxy_index + 1) % num_proxies_;
}

const std::vector<int>& ShardMap::SensorsOf(int proxy_index) const {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < num_proxies_);
  return by_proxy_[static_cast<size_t>(proxy_index)];
}

int ShardMap::MinShardSize() const {
  size_t min = by_proxy_[0].size();
  for (const auto& shard : by_proxy_) {
    min = std::min(min, shard.size());
  }
  return static_cast<int>(min);
}

int ShardMap::MaxShardSize() const {
  size_t max = 0;
  for (const auto& shard : by_proxy_) {
    max = std::max(max, shard.size());
  }
  return static_cast<int>(max);
}

}  // namespace presto
