#include "src/flash/archive_store.h"

#include <algorithm>
#include <map>

#include "src/util/assert.h"
#include "src/util/ckpt.h"
#include "src/util/logging.h"

namespace presto {
namespace {

// Default aging summarizer: mean over windows of `factor` samples, timestamped at the
// window start. Preserves the low-frequency trend, drops detail.
std::vector<Sample> MeanDecimate(const std::vector<Sample>& samples, int factor) {
  std::vector<Sample> out;
  if (samples.empty() || factor <= 1) {
    return samples;
  }
  out.reserve(samples.size() / static_cast<size_t>(factor) + 1);
  for (size_t i = 0; i < samples.size(); i += static_cast<size_t>(factor)) {
    const size_t end = std::min(samples.size(), i + static_cast<size_t>(factor));
    double sum = 0.0;
    for (size_t j = i; j < end; ++j) {
      sum += samples[j].value;
    }
    out.push_back(Sample{samples[i].t, sum / static_cast<double>(end - i)});
  }
  return out;
}

}  // namespace

ArchiveStore::ArchiveStore(FlashDevice* device, const ArchiveParams& params)
    : device_(device),
      params_(params),
      summarizer_(MeanDecimate),
      page_builder_(device->params().page_size_bytes) {
  PRESTO_CHECK(device_ != nullptr);
  PRESTO_CHECK(params_.reserve_blocks >= 1);
  PRESTO_CHECK(params_.aging_merge_blocks >= 2);
  PRESTO_CHECK(params_.aging_factor >= 2);
  free_blocks_.reserve(static_cast<size_t>(device_->params().num_blocks));
  for (int b = device_->params().num_blocks - 1; b >= 0; --b) {
    free_blocks_.push_back(b);
  }
}

void ArchiveStore::SetSummarizer(AgingSummarizer summarizer) {
  PRESTO_CHECK(summarizer != nullptr);
  summarizer_ = std::move(summarizer);
}

Status ArchiveStore::Append(Sample sample) {
  if (has_last_append_ && sample.t < last_append_ts_) {
    return InvalidArgumentError("archive appends must be time-ordered");
  }
  PRESTO_RETURN_IF_ERROR(EnsureWritable(sample.t));
  if (!page_builder_.Fits(sample.t, sample.value)) {
    PRESTO_RETURN_IF_ERROR(FlushPage());
    PRESTO_RETURN_IF_ERROR(EnsureWritable(sample.t));
  }
  page_builder_.Add(sample.t, sample.value);
  last_append_ts_ = sample.t;
  has_last_append_ = true;
  ++stats_.records_appended;
  return OkStatus();
}

Status ArchiveStore::EnsureWritable(SimTime t) {
  if (!open_) {
    // Aging keeps headroom *before* we need a block, so appends rarely block on it.
    if (static_cast<int>(free_blocks_.size()) <= params_.reserve_blocks) {
      if (params_.aging_enabled) {
        const Status aged = RunAgingPass();
        if (!aged.ok() && free_blocks_.empty()) {
          ++stats_.appends_rejected;
          return aged;
        }
      } else if (free_blocks_.empty()) {
        ++stats_.appends_rejected;
        return ResourceExhaustedError("archive full and aging disabled");
      }
    }
    PRESTO_RETURN_IF_ERROR(OpenNewSegment(params_.nominal_sample_period));
  }
  return OkStatus();
}

Status ArchiveStore::OpenNewSegment(Duration resolution) {
  if (free_blocks_.empty()) {
    return ResourceExhaustedError("no free flash blocks");
  }
  open_segment_ = Segment{};
  open_segment_.block = free_blocks_.back();
  free_blocks_.pop_back();
  open_segment_.resolution = resolution;
  next_page_in_block_ = 0;
  open_ = true;
  return OkStatus();
}

Status ArchiveStore::FlushPage() {
  if (page_builder_.Empty()) {
    return OkStatus();
  }
  PRESTO_CHECK_MSG(open_, "no open segment");
  const SimTime first = page_builder_.first_ts();
  const SimTime last = page_builder_.last_ts();
  std::vector<uint8_t> image = page_builder_.Seal(next_seq_++, open_segment_.resolution);
  PRESTO_RETURN_IF_ERROR(
      device_->WritePage(PageOf(open_segment_, next_page_in_block_), image));
  if (open_segment_.pages_used == 0) {
    open_segment_.first_ts = first;
  }
  open_segment_.last_ts = last;
  open_segment_.page_first_ts.push_back(first);
  ++open_segment_.pages_used;
  ++next_page_in_block_;

  if (next_page_in_block_ >= PagesPerBlock()) {
    segments_.push_back(open_segment_);
    open_ = false;
  }
  return OkStatus();
}

Status ArchiveStore::Flush() {
  if (page_builder_.Empty()) {
    return OkStatus();
  }
  return FlushPage();
}

Status ArchiveStore::RunAgingPass() {
  // Age within a single resolution tier. Re-merging an already-aged summary with newer
  // raw data would compound its decimation every pass until the oldest history
  // collapses to a handful of points; keeping tiers separate builds the resolution
  // ladder of Ganesan et al. [10]. Tiers are contiguous runs of equal resolution
  // (summaries splice in place), so scan for runs and age the *largest* tier — that
  // both frees the most space and keeps any one tier from monopolizing the device.
  size_t begin = 0;
  size_t run_begin = 0;
  size_t best_begin = 0;
  size_t best_len = 0;
  for (size_t i = 1; i <= segments_.size(); ++i) {
    if (i == segments_.size() ||
        segments_[i].resolution != segments_[run_begin].resolution) {
      const size_t len = i - run_begin;
      // Prefer longer runs; break ties toward the finer (later) tier.
      if (len > best_len ||
          (len == best_len && len > 0 &&
           segments_[run_begin].resolution < segments_[best_begin].resolution)) {
        best_begin = run_begin;
        best_len = len;
      }
      run_begin = i;
    }
  }
  begin = best_begin;
  const int merge = std::min(params_.aging_merge_blocks, static_cast<int>(best_len));
  if (merge < 2) {
    return ResourceExhaustedError("archive full: nothing old enough to age");
  }

  // Decode the `merge` oldest segments of the chosen tier in full.
  std::vector<Sample> samples;
  const Duration finest = segments_[begin].resolution;
  for (int i = 0; i < merge; ++i) {
    const Segment& seg = segments_[begin + static_cast<size_t>(i)];
    auto seg_samples = ReadSegment(seg, TimeInterval{seg.first_ts, seg.last_ts + 1});
    if (seg_samples.ok()) {
      samples.insert(samples.end(), seg_samples->begin(), seg_samples->end());
    }
  }
  std::vector<Sample> summary = summarizer_(samples, params_.aging_factor);
  PRESTO_CHECK_MSG(summary.size() <= samples.size(), "summarizer must not grow data");

  // Write the summary into reserved blocks. One merge pass writes at most
  // merge/aging_factor blocks (plus rounding), so the reserve is sufficient.
  const Duration new_resolution = finest * params_.aging_factor;
  std::vector<Segment> new_segments;
  {
    // Local mini-writer for summary segments.
    PageBuilder builder(device_->params().page_size_bytes);
    Segment seg{};
    int page_in_block = -1;  // -1 => no block allocated yet
    auto flush_summary_page = [&]() -> Status {
      if (builder.Empty()) {
        return OkStatus();
      }
      if (page_in_block < 0) {
        if (free_blocks_.empty()) {
          return ResourceExhaustedError("no reserve block for aging");
        }
        seg = Segment{};
        seg.block = free_blocks_.back();
        free_blocks_.pop_back();
        seg.resolution = new_resolution;
        page_in_block = 0;
      }
      const SimTime first = builder.first_ts();
      const SimTime last = builder.last_ts();
      std::vector<uint8_t> image = builder.Seal(next_seq_++, new_resolution);
      PRESTO_RETURN_IF_ERROR(
          device_->WritePage(seg.block * PagesPerBlock() + page_in_block, image));
      if (seg.pages_used == 0) {
        seg.first_ts = first;
      }
      seg.last_ts = last;
      seg.page_first_ts.push_back(first);
      ++seg.pages_used;
      ++page_in_block;
      if (page_in_block >= PagesPerBlock()) {
        new_segments.push_back(seg);
        page_in_block = -1;
      }
      return OkStatus();
    };

    for (const Sample& s : summary) {
      if (!builder.Fits(s.t, s.value)) {
        PRESTO_RETURN_IF_ERROR(flush_summary_page());
      }
      builder.Add(s.t, s.value);
    }
    PRESTO_RETURN_IF_ERROR(flush_summary_page());
    if (page_in_block >= 0) {
      new_segments.push_back(seg);
    }
  }

  // Reclaim the merged segments' blocks and splice the summary in their place (it
  // covers the same time span, so time order is preserved).
  for (int i = 0; i < merge; ++i) {
    const Segment& old = segments_[begin];
    PRESTO_RETURN_IF_ERROR(device_->EraseBlock(old.block));
    free_blocks_.push_back(old.block);
    segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(begin));
  }
  segments_.insert(segments_.begin() + static_cast<ptrdiff_t>(begin),
                   new_segments.begin(), new_segments.end());

  ++stats_.aging_passes;
  stats_.records_aged += summary.size();
  PLOG_DEBUG("archive: aging pass merged %d blocks -> %zu summary segments (res %lld us)",
             merge, new_segments.size(), static_cast<long long>(new_resolution));
  return OkStatus();
}

Result<std::vector<Sample>> ArchiveStore::ReadSegment(const Segment& seg,
                                                      TimeInterval range) {
  std::vector<Sample> out;
  std::vector<uint8_t> page(static_cast<size_t>(device_->params().page_size_bytes));
  for (int p = 0; p < seg.pages_used; ++p) {
    // Time index: skip pages entirely before/after the range. A page covers
    // [page_first_ts[p], page_first_ts[p+1] or segment end].
    if (seg.page_first_ts[static_cast<size_t>(p)] >= range.end) {
      break;
    }
    const SimTime page_end = (p + 1 < seg.pages_used)
                                 ? seg.page_first_ts[static_cast<size_t>(p + 1)]
                                 : seg.last_ts + 1;
    if (page_end <= range.start) {
      continue;
    }
    PRESTO_RETURN_IF_ERROR(device_->ReadPage(PageOf(seg, p), page));
    auto decoded = DecodePage(page);
    if (!decoded.ok()) {
      ++stats_.pages_skipped;
      continue;
    }
    for (const Sample& s : decoded->samples) {
      if (range.Contains(s.t)) {
        out.push_back(s);
        ++stats_.records_read;
      }
    }
  }
  return out;
}

Result<std::vector<Sample>> ArchiveStore::Query(TimeInterval range) {
  if (range.end <= range.start) {
    return InvalidArgumentError("empty query range");
  }
  std::vector<Sample> out;
  for (const Segment& seg : segments_) {
    if (seg.first_ts >= range.end) {
      break;
    }
    if (seg.last_ts < range.start) {
      continue;
    }
    auto part = ReadSegment(seg, range);
    if (!part.ok()) {
      return part.status();
    }
    out.insert(out.end(), part->begin(), part->end());
  }
  // Open segment pages already flushed plus the RAM tail.
  if (open_ && open_segment_.pages_used > 0) {
    auto part = ReadSegment(open_segment_, range);
    if (part.ok()) {
      out.insert(out.end(), part->begin(), part->end());
    }
  }
  // RAM tail: not yet sealed into a page. Decode from the builder by re-reading is not
  // possible; instead keep it simple — flush-on-query would distort energy accounting,
  // so the builder exposes nothing and the sensor layer calls Flush() before serving
  // archive queries. Documented in sensor_node.cc.
  return out;
}

Result<Duration> ArchiveStore::ResolutionAt(SimTime t) {
  for (const Segment& seg : segments_) {
    if (t >= seg.first_ts && t <= seg.last_ts) {
      return seg.resolution;
    }
  }
  if (open_ && open_segment_.pages_used > 0 && t >= open_segment_.first_ts &&
      t <= open_segment_.last_ts) {
    return open_segment_.resolution;
  }
  return NotFoundError("no archived data at that time");
}

Result<TimeInterval> ArchiveStore::RetainedRange() const {
  SimTime first = 0;
  SimTime last = 0;
  bool any = false;
  if (!segments_.empty()) {
    first = segments_.front().first_ts;
    last = segments_.back().last_ts;
    any = true;
  }
  if (open_ && open_segment_.pages_used > 0) {
    if (!any) {
      first = open_segment_.first_ts;
    }
    last = open_segment_.last_ts;
    any = true;
  }
  if (!any) {
    return NotFoundError("archive empty");
  }
  return TimeInterval{first, last + 1};
}

Status ArchiveStore::Mount() {
  segments_.clear();
  free_blocks_.clear();
  open_ = false;
  next_seq_ = 1;

  const int pages_per_block = PagesPerBlock();
  std::vector<uint8_t> page(static_cast<size_t>(device_->params().page_size_bytes));
  struct ScannedBlock {
    Segment segment;
    uint32_t first_seq = 0;
    bool partial = false;
  };
  std::vector<ScannedBlock> scanned;
  uint32_t max_seq = 0;
  for (int b = 0; b < device_->params().num_blocks; ++b) {
    Segment seg{};
    seg.block = b;
    uint32_t block_first_seq = 0;
    int pages_used = 0;
    for (int p = 0; p < pages_per_block; ++p) {
      if (!device_->IsPageWritten(b * pages_per_block + p)) {
        break;
      }
      PRESTO_RETURN_IF_ERROR(device_->ReadPage(b * pages_per_block + p, page));
      auto decoded = DecodePage(page);
      if (!decoded.ok()) {
        ++stats_.pages_skipped;
        break;  // torn tail: everything after the corruption in this block is suspect
      }
      if (pages_used == 0) {
        block_first_seq = decoded->header.seq;
        seg.first_ts = decoded->header.first_ts;
        seg.resolution = decoded->header.resolution;
      }
      seg.page_first_ts.push_back(decoded->header.first_ts);
      if (!decoded->samples.empty()) {
        seg.last_ts = decoded->samples.back().t;
      }
      max_seq = std::max(max_seq, decoded->header.seq);
      ++pages_used;
    }
    if (pages_used == 0) {
      free_blocks_.push_back(b);
      continue;
    }
    seg.pages_used = pages_used;
    scanned.push_back(
        ScannedBlock{std::move(seg), block_first_seq, pages_used < pages_per_block});
  }
  next_seq_ = max_seq + 1;

  // Resume appending in the *newest* partial block (by page seq); any older partial
  // block (possible only around a crash during aging) becomes a sealed short segment.
  const ScannedBlock* resume = nullptr;
  for (const ScannedBlock& sb : scanned) {
    if (sb.partial && (resume == nullptr || sb.first_seq > resume->first_seq)) {
      resume = &sb;
    }
  }
  if (resume != nullptr) {
    open_segment_ = resume->segment;
    open_ = true;
    next_page_in_block_ = resume->segment.pages_used;
  }
  for (const ScannedBlock& sb : scanned) {
    if (resume != nullptr && sb.segment.block == resume->segment.block) {
      continue;
    }
    segments_.push_back(sb.segment);
  }
  // Query paths assume time order, which block numbering does not give (aged summaries
  // live in recycled blocks).
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) { return a.first_ts < b.first_ts; });
  // Restore append-ordering state from whatever survived.
  has_last_append_ = false;
  last_append_ts_ = 0;
  for (const Segment& seg : segments_) {
    last_append_ts_ = std::max(last_append_ts_, seg.last_ts);
    has_last_append_ = true;
  }
  if (open_) {
    last_append_ts_ = std::max(last_append_ts_, open_segment_.last_ts);
    has_last_append_ = true;
  }
  PLOG_DEBUG("archive: mounted %zu segments, %zu free blocks, open=%d", segments_.size(),
             free_blocks_.size(), open_ ? 1 : 0);
  return OkStatus();
}

}  // namespace presto

namespace presto {

void ArchiveStore::SaveState(ByteWriter& w) const {
  CkptWrite(w, stats_.records_appended);
  CkptWrite(w, stats_.records_read);
  CkptWrite(w, stats_.aging_passes);
  CkptWrite(w, stats_.records_aged);
  CkptWrite(w, stats_.pages_skipped);
  CkptWrite(w, stats_.appends_rejected);
  const auto write_segment = [&w](const Segment& seg) {
    CkptWrite(w, seg.block);
    CkptWrite(w, seg.first_ts);
    CkptWrite(w, seg.last_ts);
    CkptWrite(w, seg.resolution);
    CkptWrite(w, seg.pages_used);
    CkptWrite(w, seg.page_first_ts);
  };
  w.WriteVarU64(segments_.size());
  for (const Segment& seg : segments_) {
    write_segment(seg);
  }
  CkptWrite(w, free_blocks_);
  CkptWrite(w, next_seq_);
  CkptWrite(w, open_);
  write_segment(open_segment_);
  CkptWrite(w, next_page_in_block_);
  page_builder_.SaveCkpt(w);
  CkptWrite(w, last_append_ts_);
  CkptWrite(w, has_last_append_);
}

Status ArchiveStore::LoadState(ByteReader& r) {
  CKPT_READ(r, stats_.records_appended);
  CKPT_READ(r, stats_.records_read);
  CKPT_READ(r, stats_.aging_passes);
  CKPT_READ(r, stats_.records_aged);
  CKPT_READ(r, stats_.pages_skipped);
  CKPT_READ(r, stats_.appends_rejected);
  const auto read_segment = [&r](Segment& seg) -> Status {
    CKPT_READ(r, seg.block);
    CKPT_READ(r, seg.first_ts);
    CKPT_READ(r, seg.last_ts);
    CKPT_READ(r, seg.resolution);
    CKPT_READ(r, seg.pages_used);
    CKPT_READ(r, seg.page_first_ts);
    return OkStatus();
  };
  auto segment_count = r.ReadVarU64();
  if (!segment_count.ok()) {
    return segment_count.status();
  }
  if (*segment_count > r.remaining()) {
    return DataLossError("archive restore: segment count exceeds section bytes");
  }
  segments_.clear();
  for (uint64_t i = 0; i < *segment_count; ++i) {
    Segment seg;
    PRESTO_RETURN_IF_ERROR(read_segment(seg));
    segments_.push_back(std::move(seg));
  }
  CKPT_READ(r, free_blocks_);
  CKPT_READ(r, next_seq_);
  CKPT_READ(r, open_);
  PRESTO_RETURN_IF_ERROR(read_segment(open_segment_));
  CKPT_READ(r, next_page_in_block_);
  PRESTO_RETURN_IF_ERROR(page_builder_.LoadCkpt(r));
  CKPT_READ(r, last_append_ts_);
  CKPT_READ(r, has_last_append_);
  return OkStatus();
}

}  // namespace presto
