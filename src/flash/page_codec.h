// On-flash page format for the PRESTO sensor archive.
//
// Each flash page is self-describing so the store can be remounted (and torn writes
// detected) by scanning headers alone:
//
//   magic(2) seq(4) used(2) checksum(2) first_ts(8) resolution(8) | records... | 0xFF pad
//
// Records are delta-encoded: varint milliseconds since the previous record (the first
// record is at first_ts exactly) followed by a float32 value. Millisecond granularity
// keeps archived deltas to 2-3 bytes at mote sampling rates.

#ifndef SRC_FLASH_PAGE_CODEC_H_
#define SRC_FLASH_PAGE_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/util/result.h"
#include "src/util/sample.h"
#include "src/util/span.h"

namespace presto {

class ByteReader;
class ByteWriter;

inline constexpr uint16_t kPageMagic = 0x5041;  // "PA"
inline constexpr int kPageHeaderBytes = 2 + 4 + 2 + 2 + 8 + 8;

struct PageHeader {
  uint32_t seq = 0;         // global page sequence, for mount-time ordering
  uint16_t used = 0;        // bytes of record data following the header
  uint16_t checksum = 0;    // Fletcher-16 over the record bytes
  SimTime first_ts = 0;     // timestamp of the first record
  Duration resolution = 0;  // nominal sample period of this data (grows as data ages)
};

// Fletcher-16 checksum used to detect torn page programs.
uint16_t Fletcher16(span<const uint8_t> data);

// Incrementally packs records into one page worth of bytes.
class PageBuilder {
 public:
  explicit PageBuilder(int page_size_bytes);

  // True if a record at time `t` still fits. Call before Add.
  bool Fits(SimTime t, double value) const;

  // Appends a record; timestamps must be non-decreasing within the page.
  void Add(SimTime t, double value);

  bool Empty() const { return count_ == 0; }
  int count() const { return count_; }
  SimTime first_ts() const { return first_ts_; }
  SimTime last_ts() const { return last_ts_; }

  // Produces the final page image (exactly page_size_bytes) and resets the builder.
  std::vector<uint8_t> Seal(uint32_t seq, Duration resolution);

  // Checkpoint codec for the partially filled RAM page (page_size_ is construction
  // config and not serialized).
  void SaveCkpt(ByteWriter& w) const;
  Status LoadCkpt(ByteReader& r);

 private:
  std::vector<uint8_t> EncodeRecord(SimTime t, double value) const;

  int page_size_;
  std::vector<uint8_t> records_;
  int count_ = 0;
  SimTime first_ts_ = 0;
  SimTime last_ts_ = 0;
};

// Result of parsing one page.
struct DecodedPage {
  PageHeader header;
  std::vector<Sample> samples;
};

// Parses and validates a page image. Unwritten (all-0xFF) pages yield kNotFound; corrupt
// pages (bad magic or checksum) yield kDataLoss.
Result<DecodedPage> DecodePage(span<const uint8_t> page);

}  // namespace presto

#endif  // SRC_FLASH_PAGE_CODEC_H_
