// The PRESTO sensor's local archival file system (paper §4).
//
// An append-only, time-ordered store of sensor samples on the simulated flash device,
// with:
//  - a simple time-based index (per-segment, per-page first timestamps) so PAST-query
//    reads touch only the pages that cover the requested range;
//  - crash recovery: Mount() rebuilds all state from page headers and resumes appending
//    after the last intact page (torn pages are detected by checksum and skipped);
//  - graceful aging: when free space runs low, the oldest segments are decoded,
//    re-summarized at a coarser resolution (pluggable — wavelet-based multi-resolution
//    summarization is wired in by the sensor layer), rewritten compactly, and their
//    blocks reclaimed. Old data degrades in fidelity instead of disappearing.
//
// One segment == one flash block; a segment carries data at a single resolution.

#ifndef SRC_FLASH_ARCHIVE_STORE_H_
#define SRC_FLASH_ARCHIVE_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/flash/flash_device.h"
#include "src/flash/page_codec.h"
#include "src/util/result.h"
#include "src/util/sample.h"

namespace presto {

// Reduces `samples` by `factor` (e.g. 4x fewer samples covering the same span).
// The default is windowed averaging; the sensor layer substitutes wavelet
// multi-resolution summarization (Ganesan et al., cited as [10]).
using AgingSummarizer =
    std::function<std::vector<Sample>(const std::vector<Sample>& samples, int factor)>;

struct ArchiveParams {
  Duration nominal_sample_period = Seconds(31);  // resolution tag for raw segments
  bool aging_enabled = true;
  int reserve_blocks = 2;      // keep this many blocks erased for aging headroom
  int aging_merge_blocks = 4;  // oldest segments merged per aging pass
  int aging_factor = 4;        // resolution coarsening per pass
};

struct ArchiveStats {
  uint64_t records_appended = 0;
  uint64_t records_read = 0;
  uint64_t aging_passes = 0;
  uint64_t records_aged = 0;    // records rewritten at coarser resolution
  uint64_t pages_skipped = 0;   // corrupt pages ignored during reads/mount
  uint64_t appends_rejected = 0;
};

class ArchiveStore {
 public:
  // `device` must outlive the store. A fresh device is usable immediately; a device
  // with prior contents needs Mount() first.
  ArchiveStore(FlashDevice* device, const ArchiveParams& params);

  void SetSummarizer(AgingSummarizer summarizer);

  // Appends one sample; timestamps must be non-decreasing. May trigger an aging pass.
  // Fails with kResourceExhausted only when aging is disabled (or cannot free space).
  Status Append(Sample sample);

  // Persists the partially filled RAM page, if any. Appends continue afterwards.
  Status Flush();

  // All archived samples with t in [range.start, range.end), oldest first, at whatever
  // resolution now covers that span. Includes the unflushed RAM tail.
  Result<std::vector<Sample>> Query(TimeInterval range);

  // The nominal sample period of archived data covering `t` (kNotFound if none).
  Result<Duration> ResolutionAt(SimTime t);

  // Rebuilds segment index and append position by scanning flash. Call after a
  // simulated crash/reboot; the RAM page at crash time is lost by design.
  Status Mount();

  // Oldest and newest timestamps currently retained (kNotFound when empty).
  Result<TimeInterval> RetainedRange() const;

  int FreeBlocks() const { return static_cast<int>(free_blocks_.size()); }
  const ArchiveStats& stats() const { return stats_; }

  // Checkpoint codec: segment index, free list, open-segment state (including the
  // unflushed RAM page) and stats. The flash device underneath is checkpointed
  // separately; both must be restored for the store to be consistent.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  struct Segment {
    int block = 0;
    SimTime first_ts = 0;
    SimTime last_ts = 0;
    Duration resolution = 0;
    int pages_used = 0;
    std::vector<SimTime> page_first_ts;  // time index: first record per written page
  };

  int PagesPerBlock() const { return device_->params().pages_per_block; }
  int PageOf(const Segment& seg, int page_in_block) const {
    return seg.block * PagesPerBlock() + page_in_block;
  }

  Status FlushPage();
  Status OpenNewSegment(Duration resolution);
  Status EnsureWritable(SimTime t);
  Status RunAgingPass();
  Result<std::vector<Sample>> ReadSegment(const Segment& seg, TimeInterval range);

  FlashDevice* device_;
  ArchiveParams params_;
  AgingSummarizer summarizer_;
  ArchiveStats stats_;

  std::deque<Segment> segments_;  // oldest first
  std::vector<int> free_blocks_;
  uint32_t next_seq_ = 1;

  // Open segment state. open_ is false before first append / after mount of full device.
  bool open_ = false;
  Segment open_segment_;
  int next_page_in_block_ = 0;
  PageBuilder page_builder_;
  SimTime last_append_ts_ = 0;  // enforces time-ordered appends across pages/segments
  bool has_last_append_ = false;
};

}  // namespace presto

#endif  // SRC_FLASH_ARCHIVE_STORE_H_
