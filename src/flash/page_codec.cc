#include "src/flash/page_codec.h"

#include "src/util/assert.h"
#include "src/util/ckpt.h"
#include "src/util/bytes.h"

namespace presto {
namespace {

// Millisecond-granularity delta encoding for archived timestamps.
int64_t ToDeltaMs(SimTime later, SimTime earlier) {
  return (later - earlier) / kMillisecond;
}

}  // namespace

uint16_t Fletcher16(span<const uint8_t> data) {
  uint32_t a = 0;
  uint32_t b = 0;
  for (uint8_t byte : data) {
    a = (a + byte) % 255;
    b = (b + a) % 255;
  }
  return static_cast<uint16_t>((b << 8) | a);
}

PageBuilder::PageBuilder(int page_size_bytes) : page_size_(page_size_bytes) {
  PRESTO_CHECK(page_size_ > kPageHeaderBytes + 16);
}

std::vector<uint8_t> PageBuilder::EncodeRecord(SimTime t, double value) const {
  ByteWriter w;
  const SimTime base = count_ == 0 ? t : last_ts_;
  w.WriteVarU64(static_cast<uint64_t>(ToDeltaMs(t, base)));
  w.WriteF32(static_cast<float>(value));
  return w.TakeBuffer();
}

bool PageBuilder::Fits(SimTime t, double value) const {
  const std::vector<uint8_t> rec = EncodeRecord(t, value);
  return static_cast<int>(records_.size() + rec.size()) <= page_size_ - kPageHeaderBytes;
}

void PageBuilder::Add(SimTime t, double value) {
  PRESTO_CHECK_MSG(count_ == 0 || t >= last_ts_, "archive records must be time-ordered");
  PRESTO_CHECK_MSG(Fits(t, value), "record does not fit in page");
  const std::vector<uint8_t> rec = EncodeRecord(t, value);
  if (count_ == 0) {
    // Millisecond storage granularity: remember the rounded value so deltas line up.
    first_ts_ = (t / kMillisecond) * kMillisecond;
    last_ts_ = first_ts_;
  } else {
    last_ts_ += ToDeltaMs(t, last_ts_) * kMillisecond;
  }
  records_.insert(records_.end(), rec.begin(), rec.end());
  ++count_;
}

std::vector<uint8_t> PageBuilder::Seal(uint32_t seq, Duration resolution) {
  ByteWriter w;
  w.WriteU16(kPageMagic);
  w.WriteU32(seq);
  w.WriteU16(static_cast<uint16_t>(records_.size()));
  w.WriteU16(Fletcher16(records_));
  w.WriteI64(first_ts_);
  w.WriteI64(resolution);
  std::vector<uint8_t> page = w.TakeBuffer();
  PRESTO_CHECK(static_cast<int>(page.size()) == kPageHeaderBytes);
  page.insert(page.end(), records_.begin(), records_.end());
  page.resize(static_cast<size_t>(page_size_), 0xFF);

  records_.clear();
  count_ = 0;
  first_ts_ = 0;
  last_ts_ = 0;
  return page;
}

Result<DecodedPage> DecodePage(span<const uint8_t> page) {
  bool all_ff = true;
  for (uint8_t byte : page) {
    if (byte != 0xFF) {
      all_ff = false;
      break;
    }
  }
  if (all_ff) {
    return NotFoundError("page is blank");
  }

  ByteReader r(page);
  auto magic = r.ReadU16();
  if (!magic.ok() || *magic != kPageMagic) {
    return DataLossError("bad page magic");
  }
  DecodedPage out;
  auto seq = r.ReadU32();
  auto used = r.ReadU16();
  auto checksum = r.ReadU16();
  auto first_ts = r.ReadI64();
  auto resolution = r.ReadI64();
  if (!seq.ok() || !used.ok() || !checksum.ok() || !first_ts.ok() || !resolution.ok()) {
    return DataLossError("truncated page header");
  }
  out.header.seq = *seq;
  out.header.used = *used;
  out.header.checksum = *checksum;
  out.header.first_ts = *first_ts;
  out.header.resolution = *resolution;

  if (kPageHeaderBytes + out.header.used > static_cast<int>(page.size())) {
    return DataLossError("page used-length exceeds page size");
  }
  const span<const uint8_t> records =
      page.subspan(kPageHeaderBytes, out.header.used);
  if (Fletcher16(records) != out.header.checksum) {
    return DataLossError("page checksum mismatch (torn write?)");
  }

  ByteReader rec(records);
  SimTime t = out.header.first_ts;
  bool first = true;
  while (!rec.AtEnd()) {
    auto delta = rec.ReadVarU64();
    auto value = rec.ReadF32();
    if (!delta.ok() || !value.ok()) {
      return DataLossError("truncated record");
    }
    if (first) {
      first = false;
    } else {
      t += static_cast<Duration>(*delta) * kMillisecond;
    }
    out.samples.push_back(Sample{t, static_cast<double>(*value)});
  }
  return out;
}

}  // namespace presto

namespace presto {

void PageBuilder::SaveCkpt(ByteWriter& w) const {
  CkptWrite(w, records_);
  CkptWrite(w, count_);
  CkptWrite(w, first_ts_);
  CkptWrite(w, last_ts_);
}

Status PageBuilder::LoadCkpt(ByteReader& r) {
  CKPT_READ(r, records_);
  CKPT_READ(r, count_);
  CKPT_READ(r, first_ts_);
  CKPT_READ(r, last_ts_);
  if (records_.size() > static_cast<size_t>(page_size_)) {
    return DataLossError("page builder restore: records exceed page size");
  }
  return OkStatus();
}

}  // namespace presto
