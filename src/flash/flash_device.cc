#include "src/flash/flash_device.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/ckpt.h"

namespace presto {

FlashDevice::FlashDevice(const FlashParams& params, EnergyMeter* meter)
    : params_(params), meter_(meter) {
  PRESTO_CHECK(params_.page_size_bytes > 0);
  PRESTO_CHECK(params_.pages_per_block > 0);
  PRESTO_CHECK(params_.num_blocks > 0);
  data_.assign(static_cast<size_t>(params_.CapacityBytes()), 0xFF);
  written_.assign(static_cast<size_t>(params_.TotalPages()), false);
  wear_.assign(static_cast<size_t>(params_.num_blocks), 0);
}

void FlashDevice::Charge(EnergyComponent c, double joules, Duration latency) {
  if (meter_ != nullptr) {
    meter_->Charge(c, joules);
  }
  stats_.busy_time += latency;
}

Status FlashDevice::ReadPage(int page, span<uint8_t> out) {
  if (!ValidPage(page)) {
    return OutOfRangeError("flash: page out of range");
  }
  if (out.size() != static_cast<size_t>(params_.page_size_bytes)) {
    return InvalidArgumentError("flash: read buffer must be one page");
  }
  const size_t offset = static_cast<size_t>(page) * params_.page_size_bytes;
  std::copy_n(data_.begin() + static_cast<ptrdiff_t>(offset), params_.page_size_bytes,
              out.begin());
  ++stats_.page_reads;
  Charge(EnergyComponent::kFlashRead, params_.read_page_energy_j,
         params_.read_page_latency);
  return OkStatus();
}

Status FlashDevice::WritePage(int page, span<const uint8_t> data) {
  if (!ValidPage(page)) {
    return OutOfRangeError("flash: page out of range");
  }
  if (data.size() != static_cast<size_t>(params_.page_size_bytes)) {
    return InvalidArgumentError("flash: write buffer must be one page");
  }
  if (written_[static_cast<size_t>(page)]) {
    return FailedPreconditionError("flash: page not erased");
  }
  const size_t offset = static_cast<size_t>(page) * params_.page_size_bytes;
  std::copy(data.begin(), data.end(), data_.begin() + static_cast<ptrdiff_t>(offset));
  written_[static_cast<size_t>(page)] = true;
  ++stats_.page_writes;
  Charge(EnergyComponent::kFlashWrite, params_.write_page_energy_j,
         params_.write_page_latency);
  return OkStatus();
}

Status FlashDevice::EraseBlock(int block) {
  if (!ValidBlock(block)) {
    return OutOfRangeError("flash: block out of range");
  }
  const int first = block * params_.pages_per_block;
  for (int p = first; p < first + params_.pages_per_block; ++p) {
    written_[static_cast<size_t>(p)] = false;
  }
  const size_t offset = static_cast<size_t>(first) * params_.page_size_bytes;
  const size_t len =
      static_cast<size_t>(params_.pages_per_block) * params_.page_size_bytes;
  std::fill_n(data_.begin() + static_cast<ptrdiff_t>(offset), len, 0xFF);
  ++wear_[static_cast<size_t>(block)];
  ++stats_.block_erases;
  Charge(EnergyComponent::kFlashErase, params_.erase_block_energy_j,
         params_.erase_block_latency);
  return OkStatus();
}

bool FlashDevice::IsPageWritten(int page) const {
  PRESTO_CHECK(ValidPage(page));
  return written_[static_cast<size_t>(page)];
}

uint32_t FlashDevice::BlockWear(int block) const {
  PRESTO_CHECK(ValidBlock(block));
  return wear_[static_cast<size_t>(block)];
}

void FlashDevice::CorruptPageForTest(int page) {
  PRESTO_CHECK(ValidPage(page));
  const size_t offset = static_cast<size_t>(page) * params_.page_size_bytes;
  for (int i = 0; i < params_.page_size_bytes; ++i) {
    data_[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(0xA5 ^ i);
  }
  written_[static_cast<size_t>(page)] = true;
}

}  // namespace presto

namespace presto {

void FlashDevice::SaveState(ByteWriter& w) const {
  const size_t page_size = static_cast<size_t>(params_.page_size_bytes);
  uint64_t written_count = 0;
  for (const bool b : written_) {
    written_count += b ? 1 : 0;
  }
  w.WriteVarU64(written_count);
  for (size_t p = 0; p < written_.size(); ++p) {
    if (!written_[p]) {
      continue;
    }
    w.WriteVarU64(p);
    w.WriteBytes(span<const uint8_t>(data_.data() + p * page_size, page_size));
  }
  CkptWrite(w, wear_);
  CkptWrite(w, stats_.page_reads);
  CkptWrite(w, stats_.page_writes);
  CkptWrite(w, stats_.block_erases);
  CkptWrite(w, stats_.busy_time);
}

Status FlashDevice::LoadState(ByteReader& r) {
  const size_t page_size = static_cast<size_t>(params_.page_size_bytes);
  const size_t total_pages = static_cast<size_t>(params_.TotalPages());
  auto written_count = r.ReadVarU64();
  if (!written_count.ok()) {
    return written_count.status();
  }
  if (*written_count > total_pages) {
    return DataLossError("flash restore: written-page count exceeds device size");
  }
  std::fill(data_.begin(), data_.end(), 0xFF);
  written_.assign(total_pages, false);
  for (uint64_t i = 0; i < *written_count; ++i) {
    auto page = r.ReadVarU64();
    if (!page.ok()) {
      return page.status();
    }
    if (*page >= total_pages) {
      return DataLossError("flash restore: page index out of range");
    }
    auto bytes = r.ReadBytes();
    if (!bytes.ok()) {
      return bytes.status();
    }
    if (bytes->size() != page_size) {
      return DataLossError("flash restore: page image size mismatch");
    }
    std::copy(bytes->begin(), bytes->end(),
              data_.begin() + static_cast<ptrdiff_t>(*page * page_size));
    written_[static_cast<size_t>(*page)] = true;
  }
  CKPT_READ(r, wear_);
  if (wear_.size() != static_cast<size_t>(params_.num_blocks)) {
    return DataLossError("flash restore: wear table size mismatch");
  }
  CKPT_READ(r, stats_.page_reads);
  CKPT_READ(r, stats_.page_writes);
  CKPT_READ(r, stats_.block_erases);
  CKPT_READ(r, stats_.busy_time);
  return OkStatus();
}

}  // namespace presto
