#include "src/flash/flash_device.h"

#include <algorithm>

#include "src/util/assert.h"

namespace presto {

FlashDevice::FlashDevice(const FlashParams& params, EnergyMeter* meter)
    : params_(params), meter_(meter) {
  PRESTO_CHECK(params_.page_size_bytes > 0);
  PRESTO_CHECK(params_.pages_per_block > 0);
  PRESTO_CHECK(params_.num_blocks > 0);
  data_.assign(static_cast<size_t>(params_.CapacityBytes()), 0xFF);
  written_.assign(static_cast<size_t>(params_.TotalPages()), false);
  wear_.assign(static_cast<size_t>(params_.num_blocks), 0);
}

void FlashDevice::Charge(EnergyComponent c, double joules, Duration latency) {
  if (meter_ != nullptr) {
    meter_->Charge(c, joules);
  }
  stats_.busy_time += latency;
}

Status FlashDevice::ReadPage(int page, span<uint8_t> out) {
  if (!ValidPage(page)) {
    return OutOfRangeError("flash: page out of range");
  }
  if (out.size() != static_cast<size_t>(params_.page_size_bytes)) {
    return InvalidArgumentError("flash: read buffer must be one page");
  }
  const size_t offset = static_cast<size_t>(page) * params_.page_size_bytes;
  std::copy_n(data_.begin() + static_cast<ptrdiff_t>(offset), params_.page_size_bytes,
              out.begin());
  ++stats_.page_reads;
  Charge(EnergyComponent::kFlashRead, params_.read_page_energy_j,
         params_.read_page_latency);
  return OkStatus();
}

Status FlashDevice::WritePage(int page, span<const uint8_t> data) {
  if (!ValidPage(page)) {
    return OutOfRangeError("flash: page out of range");
  }
  if (data.size() != static_cast<size_t>(params_.page_size_bytes)) {
    return InvalidArgumentError("flash: write buffer must be one page");
  }
  if (written_[static_cast<size_t>(page)]) {
    return FailedPreconditionError("flash: page not erased");
  }
  const size_t offset = static_cast<size_t>(page) * params_.page_size_bytes;
  std::copy(data.begin(), data.end(), data_.begin() + static_cast<ptrdiff_t>(offset));
  written_[static_cast<size_t>(page)] = true;
  ++stats_.page_writes;
  Charge(EnergyComponent::kFlashWrite, params_.write_page_energy_j,
         params_.write_page_latency);
  return OkStatus();
}

Status FlashDevice::EraseBlock(int block) {
  if (!ValidBlock(block)) {
    return OutOfRangeError("flash: block out of range");
  }
  const int first = block * params_.pages_per_block;
  for (int p = first; p < first + params_.pages_per_block; ++p) {
    written_[static_cast<size_t>(p)] = false;
  }
  const size_t offset = static_cast<size_t>(first) * params_.page_size_bytes;
  const size_t len =
      static_cast<size_t>(params_.pages_per_block) * params_.page_size_bytes;
  std::fill_n(data_.begin() + static_cast<ptrdiff_t>(offset), len, 0xFF);
  ++wear_[static_cast<size_t>(block)];
  ++stats_.block_erases;
  Charge(EnergyComponent::kFlashErase, params_.erase_block_energy_j,
         params_.erase_block_latency);
  return OkStatus();
}

bool FlashDevice::IsPageWritten(int page) const {
  PRESTO_CHECK(ValidPage(page));
  return written_[static_cast<size_t>(page)];
}

uint32_t FlashDevice::BlockWear(int block) const {
  PRESTO_CHECK(ValidBlock(block));
  return wear_[static_cast<size_t>(block)];
}

void FlashDevice::CorruptPageForTest(int page) {
  PRESTO_CHECK(ValidPage(page));
  const size_t offset = static_cast<size_t>(page) * params_.page_size_bytes;
  for (int i = 0; i < params_.page_size_bytes; ++i) {
    data_[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(0xA5 ^ i);
  }
  written_[static_cast<size_t>(page)] = true;
}

}  // namespace presto
