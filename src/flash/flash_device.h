// Simulated NAND-style flash device.
//
// The paper's §1 argument rests on storage being ~2 orders of magnitude cheaper than
// communication; this device model makes that quantitative. Semantics follow real
// parts: page-granular reads/writes, block-granular erases, write-once pages (a page
// must be erased before rewrite), per-block wear counters. Energy flows to the owning
// node's EnergyMeter.

#ifndef SRC_FLASH_FLASH_DEVICE_H_
#define SRC_FLASH_FLASH_DEVICE_H_

#include <cstdint>
#include <vector>

#include "src/net/energy.h"
#include "src/util/result.h"
#include "src/util/sim_time.h"
#include "src/util/span.h"

namespace presto {

class ByteReader;
class ByteWriter;

struct FlashParams {
  int page_size_bytes = 256;
  int pages_per_block = 16;
  int num_blocks = 256;  // 1 MiB with defaults

  // Latency and energy per operation (mote-class serial flash / small NAND).
  Duration read_page_latency = Micros(250);
  Duration write_page_latency = Micros(800);
  Duration erase_block_latency = Millis(2);
  double read_page_energy_j = 8e-6;
  double write_page_energy_j = 30e-6;
  double erase_block_energy_j = 60e-6;

  int TotalPages() const { return pages_per_block * num_blocks; }
  int64_t CapacityBytes() const {
    return static_cast<int64_t>(page_size_bytes) * TotalPages();
  }
};

struct FlashStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t block_erases = 0;
  Duration busy_time = 0;  // cumulative device-busy time
};

class FlashDevice {
 public:
  // `meter` may be null (energy untracked, e.g. in unit tests).
  FlashDevice(const FlashParams& params, EnergyMeter* meter);

  // Reads one page into `out` (must be exactly page_size_bytes).
  Status ReadPage(int page, span<uint8_t> out);

  // Programs one erased page from `data` (must be exactly page_size_bytes).
  // Fails with kFailedPrecondition if the page has not been erased.
  Status WritePage(int page, span<const uint8_t> data);

  // Erases a whole block, incrementing its wear count.
  Status EraseBlock(int block);

  bool IsPageWritten(int page) const;
  uint32_t BlockWear(int block) const;

  const FlashParams& params() const { return params_; }
  const FlashStats& stats() const { return stats_; }

  // Simulates power loss in the middle of programming `page`: the page is marked
  // written but filled with corrupt data. Used by recovery tests.
  void CorruptPageForTest(int page);

  // Checkpoint codec: media contents (written pages only — erased pages are implied
  // 0xFF), wear counters, and stats. LoadState requires identical FlashParams.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  bool ValidPage(int page) const { return page >= 0 && page < params_.TotalPages(); }
  bool ValidBlock(int block) const { return block >= 0 && block < params_.num_blocks; }
  void Charge(EnergyComponent c, double joules, Duration latency);

  FlashParams params_;
  EnergyMeter* meter_;
  std::vector<uint8_t> data_;
  std::vector<bool> written_;
  std::vector<uint32_t> wear_;
  FlashStats stats_;
};

}  // namespace presto

#endif  // SRC_FLASH_FLASH_DEVICE_H_
