#include "src/index/time_sync.h"

#include <cmath>

#include "src/models/linalg.h"
#include "src/util/assert.h"
#include "src/util/ckpt.h"

namespace presto {

DriftingClock::DriftingClock(Duration initial_offset, double drift_ppm,
                             Duration jitter_std,
                             uint64_t seed)
    : offset_(initial_offset),
      drift_ppm_(drift_ppm),
      jitter_std_(jitter_std),
      rng_(seed, /*stream=*/0x434c4b) {}

SimTime DriftingClock::LocalTimeExact(SimTime t) const {
  const double scaled = static_cast<double>(t) * (1.0 + drift_ppm_ * 1e-6);
  return offset_ + static_cast<SimTime>(scaled);
}

SimTime DriftingClock::LocalTime(SimTime t) {
  const double jitter = rng_.Gaussian(0.0, static_cast<double>(jitter_std_));
  return LocalTimeExact(t) + static_cast<SimTime>(jitter);
}

RegressionTimeSync::RegressionTimeSync(size_t window) : window_(window) {
  PRESTO_CHECK(window_ >= 2);
}

void RegressionTimeSync::AddBeacon(SimTime local, SimTime reference) {
  locals_.push_back(static_cast<double>(local));
  references_.push_back(static_cast<double>(reference));
  if (locals_.size() > window_) {
    locals_.erase(locals_.begin());
    references_.erase(references_.begin());
  }
  fit_valid_ = Refit().ok();
}

Status RegressionTimeSync::Refit() {
  if (locals_.size() < 2) {
    return FailedPreconditionError("time sync: need >= 2 beacons");
  }
  // Center for numerical stability: times are ~1e11 us, squares overflow doubles'
  // precision comfort zone.
  const double ref0 = references_.front();
  const double loc0 = locals_.front();
  std::vector<double> x(references_.size());
  std::vector<double> y(locals_.size());
  for (size_t i = 0; i < references_.size(); ++i) {
    x[i] = references_[i] - ref0;
    y[i] = locals_[i] - loc0;
  }
  auto line = FitLine(x, y);
  if (!line.ok()) {
    return line.status();
  }
  // local - loc0 = a + b (ref - ref0)  =>  local = (loc0 + a - b*ref0) + b*ref.
  slope_ = line->second;
  intercept_ = loc0 + line->first - slope_ * ref0;
  // A mote oscillator is a crystal within a few hundred ppm of nominal. A fitted
  // slope outside ±1% of 1.0 cannot be clock drift — it means the beacon baseline
  // is shorter than the timestamp jitter (e.g. the first two beacons after a
  // failover promotion land seconds apart), and extrapolating that line maps
  // queries wildly off the sensor's timeline. The identity fallback is strictly
  // better until the baseline grows.
  if (std::abs(slope_ - 1.0) > 0.01) {
    return FailedPreconditionError("time sync: slope outside oscillator tolerance");
  }
  return OkStatus();
}

Result<SimTime> RegressionTimeSync::Correct(SimTime local) const {
  if (!fit_valid_) {
    return FailedPreconditionError("time sync: not enough beacons");
  }
  const double reference = (static_cast<double>(local) - intercept_) / slope_;
  return static_cast<SimTime>(reference);
}

Result<SimTime> RegressionTimeSync::ToLocal(SimTime reference) const {
  if (!fit_valid_) {
    return FailedPreconditionError("time sync: not enough beacons");
  }
  return static_cast<SimTime>(intercept_ + slope_ * static_cast<double>(reference));
}

Result<double> RegressionTimeSync::ResidualRms() const {
  if (!fit_valid_) {
    return FailedPreconditionError("time sync: not enough beacons");
  }
  double sq = 0.0;
  for (size_t i = 0; i < locals_.size(); ++i) {
    const double predicted = intercept_ + slope_ * references_[i];
    const double r = locals_[i] - predicted;
    sq += r * r;
  }
  return std::sqrt(sq / static_cast<double>(locals_.size()));
}

}  // namespace presto

namespace presto {

void DriftingClock::SaveState(ByteWriter& w) const { CkptWrite(w, rng_); }

Status DriftingClock::LoadState(ByteReader& r) {
  CKPT_READ(r, rng_);
  return OkStatus();
}

void RegressionTimeSync::SaveState(ByteWriter& w) const {
  CkptWrite(w, locals_);
  CkptWrite(w, references_);
  CkptWrite(w, fit_valid_);
  CkptWrite(w, intercept_);
  CkptWrite(w, slope_);
}

Status RegressionTimeSync::LoadState(ByteReader& r) {
  CKPT_READ(r, locals_);
  CKPT_READ(r, references_);
  CKPT_READ(r, fit_valid_);
  CKPT_READ(r, intercept_);
  CKPT_READ(r, slope_);
  return OkStatus();
}

}  // namespace presto
