#include "src/index/temporal_merge.h"

#include <algorithm>
#include <queue>

namespace presto {

std::vector<Detection> MergeByTime(const std::vector<std::vector<Detection>>& streams) {
  struct Cursor {
    const std::vector<Detection>* stream;
    size_t pos;
  };
  struct Later {
    bool operator()(const Cursor& a, const Cursor& b) const {
      const Detection& da = (*a.stream)[a.pos];
      const Detection& db = (*b.stream)[b.pos];
      if (da.t != db.t) {
        return da.t > db.t;
      }
      return da.source > db.source;  // stable tie-break
    }
  };
  std::priority_queue<Cursor, std::vector<Cursor>, Later> heap;
  size_t total = 0;
  for (const auto& s : streams) {
    if (!s.empty()) {
      heap.push(Cursor{&s, 0});
    }
    total += s.size();
  }
  std::vector<Detection> out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out.push_back((*c.stream)[c.pos]);
    if (++c.pos < c.stream->size()) {
      heap.push(c);
    }
  }
  return out;
}

double AdjacentOrderAccuracy(const std::vector<Detection>& merged) {
  if (merged.size() < 2) {
    return 1.0;
  }
  size_t ordered = 0;
  for (size_t i = 1; i < merged.size(); ++i) {
    if (merged[i - 1].sequence <= merged[i].sequence) {
      ++ordered;
    }
  }
  return static_cast<double>(ordered) / static_cast<double>(merged.size() - 1);
}

double KendallTau(const std::vector<Detection>& merged) {
  const size_t n = merged.size();
  if (n < 2) {
    return 1.0;
  }
  int64_t concordant = 0;
  int64_t discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (merged[i].sequence < merged[j].sequence) {
        ++concordant;
      } else if (merged[i].sequence > merged[j].sequence) {
        ++discordant;
      }
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

}  // namespace presto
