// Order-preserving merge of detection streams from multiple proxies (paper §5: a
// traffic-monitoring view "preserves the order in which moving vehicles are detected
// across a spatial region"). Detections carry corrected timestamps; the merge produces
// the single temporally ordered view users query, and the accuracy metric quantifies
// how often clock error flips true event order.

#ifndef SRC_INDEX_TEMPORAL_MERGE_H_
#define SRC_INDEX_TEMPORAL_MERGE_H_

#include <cstdint>
#include <vector>

#include "src/util/sim_time.h"

namespace presto {

struct Detection {
  SimTime t = 0;         // (corrected) timestamp used for ordering
  uint32_t source = 0;   // proxy or sensor that produced it
  uint64_t sequence = 0; // ground-truth global order, for accuracy measurement
};

// K-way merge by timestamp (stable across sources for equal t).
std::vector<Detection> MergeByTime(const std::vector<std::vector<Detection>>& streams);

// Fraction of adjacent pairs in `merged` whose ground-truth sequence numbers are in
// order — 1.0 means clock correction fully preserved real-world event order.
double AdjacentOrderAccuracy(const std::vector<Detection>& merged);

// Kendall tau-a rank correlation between merged order and ground truth (O(n^2); use on
// bench-sized inputs).
double KendallTau(const std::vector<Detection>& merged);

}  // namespace presto

#endif  // SRC_INDEX_TEMPORAL_MERGE_H_
