// Skip graph (Aspnes & Shah, SODA 2003), the order-preserving distributed index the
// paper proposes for the unified data abstraction (§5).
//
// We implement the full structure — membership vectors, per-level doubly linked rings,
// O(log n) search/insert/delete — as an in-memory index that *counts traversal hops*.
// In a deployment each hop is a proxy-to-proxy message, so hop counts are the
// distributed cost model benches report (ablation A6).

#ifndef SRC_INDEX_SKIP_GRAPH_H_
#define SRC_INDEX_SKIP_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace presto {

class ByteReader;
class ByteWriter;

class SkipGraph {
 public:
  explicit SkipGraph(uint64_t seed);
  SkipGraph(const SkipGraph&) = delete;
  SkipGraph& operator=(const SkipGraph&) = delete;

  struct SearchStats {
    bool found = false;
    uint64_t key = 0;    // key of the node where the search stopped (floor key)
    uint64_t value = 0;
    int hops = 0;        // inter-node traversals (messages in a distributed setting)
    int levels_used = 0;
  };

  // Inserts or overwrites. Returns the hop count of the placement search.
  int Insert(uint64_t key, uint64_t value);

  // Removes a key; false if absent.
  bool Erase(uint64_t key);

  // Exact lookup.
  SearchStats Search(uint64_t key) const;

  // Largest key <= `key` (useful for "which proxy owns this range" routing).
  SearchStats SearchFloor(uint64_t key) const;

  // All (key, value) pairs with key in [lo, hi], in order. `hops` accumulates the
  // search plus the level-0 walk.
  std::vector<std::pair<uint64_t, uint64_t>> RangeQuery(uint64_t lo, uint64_t hi,
                                                        int* hops) const;

  size_t size() const { return nodes_.size(); }
  int MaxLevel() const;

  // Structural invariant check for tests: every level list is sorted and doubly linked,
  // and level-i neighbours share i bits of membership prefix.
  bool CheckInvariants() const;

  // Checkpoint codec. Links are not serialized: the level-L lists partition the nodes
  // of height > L by the low L bits of membership, in key order, so (key, value,
  // membership, height) per node plus the RNG rebuild the structure exactly.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  struct Node {
    uint64_t key = 0;
    uint64_t value = 0;
    uint64_t membership = 0;  // random bit string; level i groups share low i bits
    std::vector<Node*> left;   // per-level predecessor (nullptr at list ends)
    std::vector<Node*> right;  // per-level successor

    int Height() const { return static_cast<int>(left.size()); }
  };

  static bool SharesPrefix(uint64_t a, uint64_t b, int bits) {
    if (bits >= 64) {
      return a == b;
    }
    const uint64_t mask = (1ULL << bits) - 1;
    return (a & mask) == (b & mask);
  }

  // Entry point for searches: the leftmost node (a deployment would use any node).
  Node* EntryNode() const;
  // Level-0 floor search starting at `from`, counting hops.
  Node* FloorSearch(uint64_t key, int* hops) const;

  mutable Pcg32 rng_;
  std::map<uint64_t, std::unique_ptr<Node>> nodes_;  // ownership + O(log n) local access
};

}  // namespace presto

#endif  // SRC_INDEX_SKIP_GRAPH_H_
