#include "src/index/skip_graph.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/ckpt.h"

namespace presto {

SkipGraph::SkipGraph(uint64_t seed) : rng_(seed, /*stream=*/0x5347) {}

SkipGraph::Node* SkipGraph::EntryNode() const {
  if (nodes_.empty()) {
    return nullptr;
  }
  return nodes_.begin()->second.get();
}

// Descends from the entry node's top level toward the floor of `key` — the standard
// skip-graph search: at each level move right as far as possible without overshooting,
// then drop a level.
SkipGraph::Node* SkipGraph::FloorSearch(uint64_t key, int* hops) const {
  Node* cur = EntryNode();
  if (cur == nullptr) {
    return nullptr;
  }
  if (key < cur->key) {
    return nullptr;  // entry is leftmost, so nothing is <= key
  }
  for (int level = cur->Height() - 1; level >= 0; --level) {
    while (cur->right[static_cast<size_t>(level)] != nullptr &&
           cur->right[static_cast<size_t>(level)]->key <= key) {
      cur = cur->right[static_cast<size_t>(level)];
      if (hops != nullptr) {
        ++*hops;
      }
      // Invariant: a node linked at `level` has height > level, so indexing is safe
      // after the move. Descending within the same node costs nothing (local state).
    }
  }
  return cur;
}

int SkipGraph::Insert(uint64_t key, uint64_t value) {
  int hops = 0;
  auto existing = nodes_.find(key);
  if (existing != nodes_.end()) {
    existing->second->value = value;
    return 0;
  }

  auto owned = std::make_unique<Node>();
  Node* node = owned.get();
  node->key = key;
  node->value = value;
  node->membership = rng_.NextU64();

  // Level 0: splice into the global sorted list after the floor node.
  Node* floor = FloorSearch(key, &hops);
  node->left.assign(1, nullptr);
  node->right.assign(1, nullptr);
  if (floor == nullptr) {
    // New leftmost node: old entry (if any) becomes its right neighbour.
    Node* old_first = EntryNode();
    node->right[0] = old_first;
    if (old_first != nullptr) {
      old_first->left[0] = node;
    }
  } else {
    node->left[0] = floor;
    node->right[0] = floor->right[0];
    if (floor->right[0] != nullptr) {
      floor->right[0]->left[0] = node;
    }
    floor->right[0] = node;
  }

  // Higher levels: at level i, link with the nearest level-(i-1) neighbours sharing an
  // i-bit membership prefix; stop when neither side has one.
  for (int level = 1; level < 64; ++level) {
    Node* l = node->left[static_cast<size_t>(level - 1)];
    while (l != nullptr && !SharesPrefix(l->membership, node->membership, level)) {
      l = l->left[static_cast<size_t>(level - 1)];
      ++hops;
    }
    Node* r = node->right[static_cast<size_t>(level - 1)];
    while (r != nullptr && !SharesPrefix(r->membership, node->membership, level)) {
      r = r->right[static_cast<size_t>(level - 1)];
      ++hops;
    }
    if (l == nullptr && r == nullptr) {
      break;
    }
    node->left.push_back(l);
    node->right.push_back(r);
    if (l != nullptr) {
      if (l->Height() <= level) {
        l->left.resize(static_cast<size_t>(level) + 1, nullptr);
        l->right.resize(static_cast<size_t>(level) + 1, nullptr);
      }
      l->right[static_cast<size_t>(level)] = node;
    }
    if (r != nullptr) {
      if (r->Height() <= level) {
        r->left.resize(static_cast<size_t>(level) + 1, nullptr);
        r->right.resize(static_cast<size_t>(level) + 1, nullptr);
      }
      r->left[static_cast<size_t>(level)] = node;
    }
  }

  nodes_.emplace(key, std::move(owned));
  return hops;
}

bool SkipGraph::Erase(uint64_t key) {
  auto it = nodes_.find(key);
  if (it == nodes_.end()) {
    return false;
  }
  Node* node = it->second.get();
  for (int level = 0; level < node->Height(); ++level) {
    Node* l = node->left[static_cast<size_t>(level)];
    Node* r = node->right[static_cast<size_t>(level)];
    if (l != nullptr && l->Height() > level) {
      l->right[static_cast<size_t>(level)] = r;
    }
    if (r != nullptr && r->Height() > level) {
      r->left[static_cast<size_t>(level)] = l;
    }
  }
  nodes_.erase(it);
  return true;
}

SkipGraph::SearchStats SkipGraph::Search(uint64_t key) const {
  SearchStats stats;
  Node* floor = FloorSearch(key, &stats.hops);
  Node* entry = EntryNode();
  stats.levels_used = entry != nullptr ? entry->Height() : 0;
  if (floor != nullptr) {
    stats.key = floor->key;
    stats.value = floor->value;
    stats.found = floor->key == key;
  }
  return stats;
}

SkipGraph::SearchStats SkipGraph::SearchFloor(uint64_t key) const {
  SearchStats stats;
  Node* floor = FloorSearch(key, &stats.hops);
  if (floor != nullptr) {
    stats.found = true;
    stats.key = floor->key;
    stats.value = floor->value;
  }
  return stats;
}

std::vector<std::pair<uint64_t, uint64_t>> SkipGraph::RangeQuery(uint64_t lo, uint64_t hi,
                                                                 int* hops) const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  int local_hops = 0;
  Node* cur = FloorSearch(lo, &local_hops);
  if (cur == nullptr) {
    cur = EntryNode();  // everything is above lo; start from the leftmost node
  } else if (cur->key < lo) {
    cur = cur->right[0];
    ++local_hops;
  }
  while (cur != nullptr && cur->key <= hi) {
    out.emplace_back(cur->key, cur->value);
    cur = cur->right[0];
    ++local_hops;
  }
  if (hops != nullptr) {
    *hops += local_hops;
  }
  return out;
}

int SkipGraph::MaxLevel() const {
  int level = 0;
  for (const auto& [key, node] : nodes_) {
    (void)key;
    level = std::max(level, node->Height());
  }
  return level;
}

bool SkipGraph::CheckInvariants() const {
  for (const auto& [key, node] : nodes_) {
    (void)key;
    for (int level = 0; level < node->Height(); ++level) {
      Node* r = node->right[static_cast<size_t>(level)];
      if (r != nullptr) {
        if (r->key <= node->key) {
          return false;
        }
        if (r->Height() <= level || r->left[static_cast<size_t>(level)] != node.get()) {
          return false;
        }
        if (!SharesPrefix(r->membership, node->membership, level)) {
          return false;
        }
      }
      Node* l = node->left[static_cast<size_t>(level)];
      if (l != nullptr) {
        if (l->key >= node->key) {
          return false;
        }
        if (l->Height() <= level || l->right[static_cast<size_t>(level)] != node.get()) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace presto

namespace presto {

void SkipGraph::SaveState(ByteWriter& w) const {
  CkptWrite(w, rng_);
  w.WriteVarU64(nodes_.size());
  for (const auto& [key, node] : nodes_) {
    CkptWrite(w, key);
    CkptWrite(w, node->value);
    CkptWrite(w, node->membership);
    CkptWrite(w, static_cast<uint64_t>(node->Height()));
  }
}

Status SkipGraph::LoadState(ByteReader& r) {
  CKPT_READ(r, rng_);
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > r.remaining()) {
    return DataLossError("skip graph restore: node count exceeds section bytes");
  }
  nodes_.clear();
  int max_height = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    uint64_t key = 0;
    uint64_t value = 0;
    uint64_t membership = 0;
    uint64_t height = 0;
    CKPT_READ(r, key);
    CKPT_READ(r, value);
    CKPT_READ(r, membership);
    CKPT_READ(r, height);
    if (height == 0 || height > 64) {
      return DataLossError("skip graph restore: bad node height");
    }
    auto node = std::make_unique<Node>();
    node->key = key;
    node->value = value;
    node->membership = membership;
    node->left.assign(static_cast<size_t>(height), nullptr);
    node->right.assign(static_cast<size_t>(height), nullptr);
    max_height = std::max(max_height, static_cast<int>(height));
    if (!nodes_.emplace(key, std::move(node)).second) {
      return DataLossError("skip graph restore: duplicate key");
    }
  }
  // Relink: the level-L lists partition {nodes with Height > L} by the low L bits of
  // membership, sorted by key — the exact structure Insert/Erase maintain.
  for (int level = 0; level < max_height; ++level) {
    const uint64_t mask = level == 0 ? 0 : (1ULL << level) - 1;
    std::map<uint64_t, Node*> last_in_group;
    for (auto& [key, node] : nodes_) {
      (void)key;
      if (node->Height() <= level) {
        continue;
      }
      auto [it, inserted] = last_in_group.emplace(node->membership & mask, node.get());
      if (!inserted) {
        Node* prev = it->second;
        prev->right[static_cast<size_t>(level)] = node.get();
        node->left[static_cast<size_t>(level)] = prev;
        it->second = node.get();
      }
    }
  }
  return OkStatus();
}

}  // namespace presto
