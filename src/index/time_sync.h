// Temporal consistency across the sensor tier (paper §5): mote clocks drift and skew,
// so sensor-local timestamps must be mapped onto the proxies' reference timeline before
// data from different sensors can be ordered or merged.
//
// DriftingClock models a mote oscillator (initial offset + ppm drift + read jitter).
// RegressionTimeSync is the proxy-side corrector: it collects (local, reference) beacon
// pairs and fits local = a + b * reference by least squares, then inverts the line to
// correct timestamps.

#ifndef SRC_INDEX_TIME_SYNC_H_
#define SRC_INDEX_TIME_SYNC_H_

#include <vector>

#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/sim_time.h"

namespace presto {

class ByteReader;
class ByteWriter;

class DriftingClock {
 public:
  // drift_ppm: parts-per-million frequency error (positive runs fast).
  // jitter_std: per-reading Gaussian noise (timestamping latency variation).
  DriftingClock(Duration initial_offset, double drift_ppm, Duration jitter_std,
                uint64_t seed);

  // The mote's local clock reading at true time `t` (jittered).
  SimTime LocalTime(SimTime t);

  // Deterministic (jitter-free) reading, for ground-truth checks in tests.
  SimTime LocalTimeExact(SimTime t) const;

  double drift_ppm() const { return drift_ppm_; }

  // Checkpoint codec: only the jitter RNG is dynamic state.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  Duration offset_;
  double drift_ppm_;
  Duration jitter_std_;
  Pcg32 rng_;
};

class RegressionTimeSync {
 public:
  // Caps memory: only the most recent `window` beacons contribute to the fit.
  explicit RegressionTimeSync(size_t window = 32);

  // Records a sync beacon: the sensor reported local time `local` at proxy reference
  // time `reference` (e.g. stamped on a push the proxy just received).
  void AddBeacon(SimTime local, SimTime reference);

  size_t beacon_count() const { return locals_.size(); }
  // A usable fit exists: >= 2 beacons whose least-squares slope is physically
  // plausible (see Refit). Correct/ToLocal fail until this holds.
  bool Ready() const { return fit_valid_; }

  // Maps a sensor-local timestamp onto the reference timeline. Falls back to identity
  // (kFailedPrecondition) until two beacons are seen.
  Result<SimTime> Correct(SimTime local) const;

  // Inverse mapping: the sensor-local time corresponding to a reference time (used to
  // phrase archive pulls in the sensor's own timeline).
  Result<SimTime> ToLocal(SimTime reference) const;

  // RMS residual of the fit in microseconds (how trustworthy corrections are).
  Result<double> ResidualRms() const;

  // Checkpoint codec: beacon window and the fitted line.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  Status Refit();

  size_t window_;
  std::vector<double> locals_;
  std::vector<double> references_;
  bool fit_valid_ = false;
  double intercept_ = 0.0;  // local = intercept + slope * reference
  double slope_ = 1.0;
};

}  // namespace presto

#endif  // SRC_INDEX_TIME_SYNC_H_
