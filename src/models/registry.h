// Model factory: creation by type and reconstruction from serialized parameters (the
// sensor-side entry point when model parameters arrive over the radio).

#ifndef SRC_MODELS_REGISTRY_H_
#define SRC_MODELS_REGISTRY_H_

#include <memory>

#include "src/models/model.h"
#include "src/util/span.h"

namespace presto {

// Fresh, unfitted model of the given type.
std::unique_ptr<PredictiveModel> CreateModel(ModelType type, const ModelConfig& config);

// Rebuilds a fitted model from Serialize() bytes (first byte = ModelType).
Result<std::unique_ptr<PredictiveModel>> DeserializeModel(span<const uint8_t> bytes,
                                                          const ModelConfig& config);

}  // namespace presto

#endif  // SRC_MODELS_REGISTRY_H_
