// Small dense linear algebra for model fitting: just enough for Yule-Walker systems and
// multivariate-Gaussian conditioning (tens of dimensions), implemented directly rather
// than pulling in a BLAS.

#ifndef SRC_MODELS_LINALG_H_
#define SRC_MODELS_LINALG_H_

#include <vector>

#include "src/util/result.h"

namespace presto {

// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0);

  double& At(int r, int c);
  double At(int r, int c) const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  static Matrix Identity(int n);
  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;
  std::vector<double> MultiplyVec(const std::vector<double>& v) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

// Cholesky factorization A = L L^T of a symmetric positive-definite matrix. Fails with
// kFailedPrecondition if A is not (numerically) positive definite.
Result<Matrix> CholeskyFactor(const Matrix& a);

// Solves A x = b given the Cholesky factor L of A.
std::vector<double> CholeskySolve(const Matrix& l, const std::vector<double>& b);

// Solves the symmetric positive-definite system A x = b (factor + solve). Adds
// `ridge` * I for numerical safety when requested.
Result<std::vector<double>> SolveSpd(Matrix a, const std::vector<double>& b,
                                     double ridge = 0.0);

// Levinson-Durbin recursion: given autocovariances r[0..p], returns AR coefficients
// phi[1..p] (as a p-vector) and the innovation variance. Fails if r[0] <= 0.
struct YuleWalkerFit {
  std::vector<double> phi;
  double innovation_variance = 0.0;
};
Result<YuleWalkerFit> LevinsonDurbin(const std::vector<double>& autocov);

// Sample autocovariances of `x` at lags 0..max_lag (biased estimator, standard for YW).
std::vector<double> Autocovariance(const std::vector<double>& x, int max_lag);

// Ordinary least squares for y ~ a + b*x. Returns {a, b}; fails with fewer than 2
// distinct x values.
Result<std::pair<double, double>> FitLine(const std::vector<double>& x,
                                          const std::vector<double>& y);

}  // namespace presto

#endif  // SRC_MODELS_LINALG_H_
