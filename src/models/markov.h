// Discretized-value Markov-chain model (paper §3 suggests Markov models for the
// temporal axis; best suited to regime-style data like daily activity levels).

#ifndef SRC_MODELS_MARKOV_H_
#define SRC_MODELS_MARKOV_H_

#include <vector>

#include "src/models/model.h"

namespace presto {

class MarkovModel : public PredictiveModel {
 public:
  explicit MarkovModel(const ModelConfig& config) : config_(config) {}

  ModelType type() const override { return ModelType::kMarkov; }
  Status Fit(const std::vector<Sample>& history) override;
  std::vector<uint8_t> Serialize() const override;
  Status Deserialize(span<const uint8_t> bytes) override;
  Prediction Predict(SimTime t) const override;
  void OnAnchor(const Sample& sample) override;
  int64_t PredictCostOps() const override;
  int64_t FitCostOps(size_t history_len) const override;
  std::unique_ptr<PredictiveModel> Clone() const override {
    return std::make_unique<MarkovModel>(*this);
  }
  void SaveState(ByteWriter& w) const override;
  Status LoadState(ByteReader& r) override;

  int num_states() const { return static_cast<int>(centers_.size()); }

 private:
  int StateOf(double value) const;
  // Distribution after k steps from `start`, via cached binary powers of P.
  std::vector<double> Evolve(int start, int64_t k) const;
  Prediction FromDistribution(const std::vector<double>& dist) const;
  void BuildPowerCache();
  // Rounds fitted parameters through the wire precision so proxy and sensor replicas
  // are bit-identical after a Serialize/Deserialize round trip.
  void QuantizeToWirePrecision();

  ModelConfig config_;
  std::vector<double> centers_;              // state representative values
  std::vector<std::vector<double>> trans_;   // row-stochastic transition matrix
  std::vector<double> marginal_;             // empirical state frequencies
  double bin_half_width_ = 0.0;
  bool fitted_ = false;
  bool anchored_ = false;
  int anchor_state_ = 0;
  SimTime anchor_time_ = 0;
  // trans_^(2^i) for binary-decomposition evolution over long horizons.
  std::vector<std::vector<std::vector<double>>> power_cache_;
};

}  // namespace presto

#endif  // SRC_MODELS_MARKOV_H_
