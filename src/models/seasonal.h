// Seasonal (time-of-day) models. The paper's canonical example: "only deviations from
// the normal temperature for each hour of the day are reported."

#ifndef SRC_MODELS_SEASONAL_H_
#define SRC_MODELS_SEASONAL_H_

#include <vector>

#include "src/models/model.h"
#include "src/util/bytes.h"

namespace presto {

// Shared bin machinery: per-bin mean/spread over a repeating period, with linear
// interpolation between bin centers. Reused by SeasonalModel and SeasonalArModel.
struct SeasonalBins {
  Duration period = Hours(24);
  std::vector<double> means;
  std::vector<double> stddevs;

  int BinOf(SimTime t) const;
  // Interpolated seasonal expectation at t.
  double ValueAt(SimTime t) const;
  double StddevAt(SimTime t) const;

  // Fits bins from samples; requires at least one sample per bin.
  Status Fit(const std::vector<Sample>& history, int bins);

  void SerializeTo(ByteWriter* w) const;
  Status DeserializeFrom(ByteReader* r);

  // Full-precision checkpoint codec (the wire form above rounds through f32).
  void SaveCkpt(ByteWriter& w) const;
  Status LoadCkpt(ByteReader& r);
};

// Pure seasonal predictor: Predict(t) = bin mean. Stateless across anchors (an anchor
// does not change the climatology), so sensor and proxy replicas agree trivially.
class SeasonalModel : public PredictiveModel {
 public:
  explicit SeasonalModel(const ModelConfig& config) : config_(config) {}

  ModelType type() const override { return ModelType::kSeasonal; }
  Status Fit(const std::vector<Sample>& history) override;
  std::vector<uint8_t> Serialize() const override;
  Status Deserialize(span<const uint8_t> bytes) override;
  Prediction Predict(SimTime t) const override;
  void OnAnchor(const Sample& sample) override;
  int64_t PredictCostOps() const override { return 8; }
  int64_t FitCostOps(size_t history_len) const override {
    return static_cast<int64_t>(history_len) * 4;
  }
  std::unique_ptr<PredictiveModel> Clone() const override {
    return std::make_unique<SeasonalModel>(*this);
  }
  void SaveState(ByteWriter& w) const override;
  Status LoadState(ByteReader& r) override;

 private:
  ModelConfig config_;
  SeasonalBins bins_;
  bool fitted_ = false;
};

// Persistence model: Predict(t) = last transmitted value, uncertainty growing with the
// time since that anchor (random-walk error model). This is the model-driven analogue
// of plain value-driven push and the weakest baseline in the model ablation.
class LastValueModel : public PredictiveModel {
 public:
  explicit LastValueModel(const ModelConfig& config) : config_(config) {}

  ModelType type() const override { return ModelType::kLastValue; }
  Status Fit(const std::vector<Sample>& history) override;
  std::vector<uint8_t> Serialize() const override;
  Status Deserialize(span<const uint8_t> bytes) override;
  Prediction Predict(SimTime t) const override;
  void OnAnchor(const Sample& sample) override;
  int64_t PredictCostOps() const override { return 4; }
  int64_t FitCostOps(size_t history_len) const override {
    return static_cast<int64_t>(history_len) * 2;
  }
  std::unique_ptr<PredictiveModel> Clone() const override {
    return std::make_unique<LastValueModel>(*this);
  }
  void SaveState(ByteWriter& w) const override;
  Status LoadState(ByteReader& r) override;

 private:
  ModelConfig config_;
  double mean_ = 0.0;
  double marginal_stddev_ = 0.0;
  double step_stddev_ = 0.0;  // stddev of one-sample differences
  bool fitted_ = false;
  bool anchored_ = false;
  Sample anchor_{};
};

}  // namespace presto

#endif  // SRC_MODELS_SEASONAL_H_
