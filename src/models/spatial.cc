#include "src/models/spatial.h"

#include <cmath>

#include "src/util/assert.h"

namespace presto {

Status SpatialGaussianModel::Fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) {
    return FailedPreconditionError("spatial fit: no rows");
  }
  const int d = static_cast<int>(rows[0].size());
  if (d < 2) {
    return FailedPreconditionError("spatial fit: need >= 2 sensors");
  }
  if (rows.size() < static_cast<size_t>(d) + 2) {
    return FailedPreconditionError("spatial fit: need more snapshots than sensors");
  }
  for (const auto& row : rows) {
    if (static_cast<int>(row.size()) != d) {
      return InvalidArgumentError("spatial fit: ragged rows");
    }
  }
  const double n = static_cast<double>(rows.size());
  mean_.assign(static_cast<size_t>(d), 0.0);
  for (const auto& row : rows) {
    for (int i = 0; i < d; ++i) {
      mean_[static_cast<size_t>(i)] += row[static_cast<size_t>(i)];
    }
  }
  for (double& m : mean_) {
    m /= n;
  }
  cov_ = Matrix(d, d);
  for (const auto& row : rows) {
    for (int i = 0; i < d; ++i) {
      const double di = row[static_cast<size_t>(i)] - mean_[static_cast<size_t>(i)];
      for (int j = i; j < d; ++j) {
        const double dj = row[static_cast<size_t>(j)] - mean_[static_cast<size_t>(j)];
        cov_.At(i, j) += di * dj;
      }
    }
  }
  for (int i = 0; i < d; ++i) {
    for (int j = i; j < d; ++j) {
      cov_.At(i, j) /= n;
      cov_.At(j, i) = cov_.At(i, j);
    }
  }
  fitted_ = true;
  return OkStatus();
}

double SpatialGaussianModel::Correlation(int i, int j) const {
  PRESTO_CHECK(fitted_);
  const double denom = std::sqrt(cov_.At(i, i) * cov_.At(j, j));
  if (denom <= 0.0) {
    return 0.0;
  }
  return cov_.At(i, j) / denom;
}

Result<Prediction> SpatialGaussianModel::Condition(
    int target, const std::vector<std::pair<int, double>>& observed) const {
  if (!fitted_) {
    return FailedPreconditionError("spatial model not fitted");
  }
  if (target < 0 || target >= dims()) {
    return InvalidArgumentError("spatial: bad target index");
  }
  const double marginal_var = cov_.At(target, target);
  if (observed.empty()) {
    return Prediction{mean_[static_cast<size_t>(target)],
                      std::sqrt(std::max(marginal_var, 0.0))};
  }
  const int m = static_cast<int>(observed.size());
  Matrix sigma_oo(m, m);
  std::vector<double> delta(static_cast<size_t>(m));
  std::vector<double> sigma_to(static_cast<size_t>(m));
  for (int a = 0; a < m; ++a) {
    const auto& [ia, va] = observed[static_cast<size_t>(a)];
    if (ia < 0 || ia >= dims() || ia == target) {
      return InvalidArgumentError("spatial: bad observed index");
    }
    delta[static_cast<size_t>(a)] = va - mean_[static_cast<size_t>(ia)];
    sigma_to[static_cast<size_t>(a)] = cov_.At(target, ia);
    for (int b = 0; b < m; ++b) {
      sigma_oo.At(a, b) = cov_.At(ia, observed[static_cast<size_t>(b)].first);
    }
  }
  // Solve Sigma_oo x = delta and Sigma_oo y = Sigma_ot with a touch of ridge for
  // near-singular neighbour sets (perfectly correlated sensors).
  auto x = SolveSpd(sigma_oo, delta, /*ridge=*/1e-9 + 1e-6 * marginal_var);
  if (!x.ok()) {
    return x.status();
  }
  auto y = SolveSpd(sigma_oo, sigma_to, /*ridge=*/1e-9 + 1e-6 * marginal_var);
  if (!y.ok()) {
    return y.status();
  }
  double value = mean_[static_cast<size_t>(target)];
  double var = marginal_var;
  for (int a = 0; a < m; ++a) {
    value += sigma_to[static_cast<size_t>(a)] * (*x)[static_cast<size_t>(a)];
    var -= sigma_to[static_cast<size_t>(a)] * (*y)[static_cast<size_t>(a)];
  }
  return Prediction{value, std::sqrt(std::max(var, 0.0))};
}

}  // namespace presto
