#include "src/models/registry.h"

#include "src/models/ar.h"
#include "src/models/markov.h"
#include "src/models/seasonal.h"
#include "src/util/assert.h"
#include "src/util/ckpt.h"

namespace presto {

const char* ModelTypeName(ModelType type) {
  switch (type) {
    case ModelType::kLastValue:
      return "last-value";
    case ModelType::kSeasonal:
      return "seasonal";
    case ModelType::kAr:
      return "ar";
    case ModelType::kSeasonalAr:
      return "seasonal-ar";
    case ModelType::kMarkov:
      return "markov";
  }
  return "?";
}

std::unique_ptr<PredictiveModel> CreateModel(ModelType type, const ModelConfig& config) {
  switch (type) {
    case ModelType::kLastValue:
      return std::make_unique<LastValueModel>(config);
    case ModelType::kSeasonal:
      return std::make_unique<SeasonalModel>(config);
    case ModelType::kAr:
      return std::make_unique<ArModel>(config);
    case ModelType::kSeasonalAr:
      return std::make_unique<SeasonalArModel>(config);
    case ModelType::kMarkov:
      return std::make_unique<MarkovModel>(config);
  }
  PRESTO_CHECK_MSG(false, "unknown model type");
  return nullptr;
}

void SaveModelState(ByteWriter& w, const PredictiveModel* model) {
  if (model == nullptr) {
    w.WriteU8(0);  // null marker: no model installed yet
    return;
  }
  w.WriteU8(static_cast<uint8_t>(model->type()));
  model->SaveState(w);
}

Result<std::unique_ptr<PredictiveModel>> LoadModelState(ByteReader& r,
                                                        const ModelConfig& config) {
  auto tag = r.ReadU8();
  if (!tag.ok()) {
    return tag.status();
  }
  if (*tag == 0) {
    return std::unique_ptr<PredictiveModel>();
  }
  if (*tag < static_cast<uint8_t>(ModelType::kLastValue) ||
      *tag > static_cast<uint8_t>(ModelType::kMarkov)) {
    return DataLossError("model restore: unknown type tag");
  }
  std::unique_ptr<PredictiveModel> model =
      CreateModel(static_cast<ModelType>(*tag), config);
  PRESTO_RETURN_IF_ERROR(model->LoadState(r));
  return model;
}

Result<std::unique_ptr<PredictiveModel>> DeserializeModel(span<const uint8_t> bytes,
                                                          const ModelConfig& config) {
  if (bytes.empty()) {
    return InvalidArgumentError("empty model params");
  }
  const uint8_t tag = bytes[0];
  if (tag < static_cast<uint8_t>(ModelType::kLastValue) ||
      tag > static_cast<uint8_t>(ModelType::kMarkov)) {
    return InvalidArgumentError("unknown model type tag");
  }
  std::unique_ptr<PredictiveModel> model =
      CreateModel(static_cast<ModelType>(tag), config);
  PRESTO_RETURN_IF_ERROR(model->Deserialize(bytes));
  return model;
}

}  // namespace presto
