// Predictive model interface (paper §3, "Prediction Engine").
//
// PRESTO's models are deliberately *asymmetric*: expensive to fit at the tethered
// proxy, cheap to evaluate at the sensor. The same object runs at both ends:
//
//   proxy:   model->Fit(history)  -> params = model->Serialize()  --radio--> sensor
//   sensor:  model->Deserialize(params); every sample: |v - model->Predict(t)| > delta?
//            push : suppress.    On push, BOTH ends call OnAnchor(sample), keeping the
//            two replicas' state identical (the proxy knows exactly what the sensor
//            suppressed, so it can extrapolate the gaps).
//
// The mirrored-state contract is what makes model-driven push lossless in expectation:
// any sample the sensor suppressed is one the proxy can reconstruct to within delta.

#ifndef SRC_MODELS_MODEL_H_
#define SRC_MODELS_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/result.h"
#include "src/util/sample.h"
#include "src/util/span.h"

namespace presto {

class ByteReader;
class ByteWriter;

// A forecast with one-sigma uncertainty. Extrapolation answers a query only when
// `stddev` is within the query's error tolerance (proxy/query logic).
struct Prediction {
  double value = 0.0;
  double stddev = 0.0;
};

enum class ModelType : uint8_t {
  kLastValue = 1,   // persistence: predict the last transmitted value
  kSeasonal = 2,    // time-of-day bins (+ per-bin spread)
  kAr = 3,          // AR(p) on the sensing grid, anchored at pushes
  kSeasonalAr = 4,  // seasonal bins + AR(p) on the residual (SARIMA-lite)
  kMarkov = 5,      // discretized-value Markov chain (activity-style data)
};

const char* ModelTypeName(ModelType type);

// Tuning knobs shared by the factory. Fields irrelevant to a model type are ignored.
struct ModelConfig {
  Duration sample_period = Seconds(31);   // sensing grid the AR state rolls on
  Duration seasonal_period = Hours(24);   // one diurnal cycle
  int seasonal_bins = 24;                 // bins per seasonal period
  int ar_order = 2;
  int markov_states = 8;
  int max_forecast_steps = 4096;          // psi-weight horizon for AR variance
};

class PredictiveModel {
 public:
  virtual ~PredictiveModel() = default;

  virtual ModelType type() const = 0;
  const char* Name() const { return ModelTypeName(type()); }

  // Estimates parameters from a training window (proxy side). History must be
  // time-ordered; models state their minimum length via the returned error.
  virtual Status Fit(const std::vector<Sample>& history) = 0;

  // Wire format of the fitted parameters (the bytes the proxy radios to the sensor —
  // their size is a real communication cost). First byte is the ModelType.
  virtual std::vector<uint8_t> Serialize() const = 0;

  // Reconstructs a fitted model from Serialize() output (sensor side).
  virtual Status Deserialize(span<const uint8_t> bytes) = 0;

  // Forecast at absolute time `t`, given params + anchors so far. Must be callable for
  // any `t` (queries extrapolate both forward and into unpushed past gaps).
  virtual Prediction Predict(SimTime t) const = 0;

  // State update when a sample crosses the radio (push or pull); called identically at
  // the proxy and the sensor to keep replicas in lockstep.
  virtual void OnAnchor(const Sample& sample) = 0;

  // Abstract operation counts for CPU-energy accounting on the sensor. A "check" is
  // Predict + compare; Fit cost is proxy-side (tethered, but reported by benches to
  // demonstrate the asymmetry requirement from §3).
  virtual int64_t PredictCostOps() const = 0;
  virtual int64_t FitCostOps(size_t history_len) const = 0;

  virtual std::unique_ptr<PredictiveModel> Clone() const = 0;

  // Checkpoint codec — distinct from Serialize(): the wire format is deliberately
  // lossy (f32 rounding, quantized probabilities, dropped anchors are radio-cost
  // decisions), while a checkpoint must restore the replica bit-exactly. Full f64
  // state, including anchors and rolling windows. LoadState overwrites everything;
  // derived caches are rebuilt deterministically.
  virtual void SaveState(ByteWriter& w) const = 0;
  virtual Status LoadState(ByteReader& r) = 0;
};

// Checkpoint-serializes `model` with its type tag (or a null marker), so the paired
// loader can reconstruct the right concrete class. `model` may be null.
void SaveModelState(ByteWriter& w, const PredictiveModel* model);

// Rebuilds a model from SaveModelState bytes: returns nullptr for the null marker,
// otherwise a freshly created model of the tagged type with LoadState applied.
Result<std::unique_ptr<PredictiveModel>> LoadModelState(ByteReader& r,
                                                        const ModelConfig& config);

}  // namespace presto

#endif  // SRC_MODELS_MODEL_H_
