#include "src/models/ar.h"

#include <algorithm>
#include <cmath>

#include "src/models/linalg.h"
#include "src/util/assert.h"
#include "src/util/ckpt.h"

namespace presto {

// ---------- ArCore ----------

Status ArCore::Fit(const std::vector<double>& values, SimTime last_sample_time,
                   int order) {
  PRESTO_CHECK(order >= 1);
  if (static_cast<int>(values.size()) < std::max(8, 4 * order)) {
    return FailedPreconditionError("AR fit: history too short");
  }
  double sum = 0.0;
  double sq = 0.0;
  for (double v : values) {
    sum += v;
    sq += v * v;
  }
  const double n = static_cast<double>(values.size());
  mean = sum / n;
  marginal_std = std::sqrt(std::max(1e-12, sq / n - mean * mean));

  const std::vector<double> autocov = Autocovariance(values, order);
  auto yw = LevinsonDurbin(autocov);
  if (!yw.ok()) {
    return yw.status();
  }
  phi = yw->phi;
  innovation_std = std::sqrt(std::max(yw->innovation_variance, 1e-12));

  // State = last `order` values, newest last.
  state.assign(values.end() - order, values.end());
  state_time = last_sample_time;

  // Round through the wire's float32 precision so the proxy's copy and the sensor's
  // deserialized copy forecast bit-identically (lockstep contract in model.h).
  auto f32 = [](double v) { return static_cast<double>(static_cast<float>(v)); };
  mean = f32(mean);
  marginal_std = f32(marginal_std);
  innovation_std = f32(innovation_std);
  for (double& p : phi) {
    p = f32(p);
  }
  for (double& v : state) {
    v = f32(v);
  }
  ComputeHorizonStd();
  return OkStatus();
}

double ArCore::StepOnce(const std::vector<double>& window) const {
  // window holds the last p values, newest last; phi[0] multiplies the newest.
  double next = mean;
  const size_t p = phi.size();
  for (size_t i = 0; i < p; ++i) {
    next += phi[i] * (window[window.size() - 1 - i] - mean);
  }
  return next;
}

void ArCore::ComputeHorizonStd() {
  // psi-weight recursion: psi_0 = 1, psi_j = sum_{i<=min(j,p)} phi_i psi_{j-i}.
  const int p = static_cast<int>(phi.size());
  const int horizon = max_forecast_steps;
  std::vector<double> psi(static_cast<size_t>(horizon) + 1, 0.0);
  psi[0] = 1.0;
  for (int j = 1; j <= horizon; ++j) {
    double v = 0.0;
    for (int i = 1; i <= std::min(j, p); ++i) {
      v += phi[static_cast<size_t>(i - 1)] * psi[static_cast<size_t>(j - i)];
    }
    psi[static_cast<size_t>(j)] = v;
  }
  horizon_std.assign(static_cast<size_t>(horizon) + 1, 0.0);
  double cum = 0.0;
  const double var_cap = marginal_std * marginal_std;
  for (int k = 1; k <= horizon; ++k) {
    cum += psi[static_cast<size_t>(k - 1)] * psi[static_cast<size_t>(k - 1)];
    const double var = std::min(innovation_std * innovation_std * cum, 1.5 * var_cap);
    horizon_std[static_cast<size_t>(k)] = std::sqrt(var);
  }
}

Prediction ArCore::Forecast(SimTime t) const {
  PRESTO_DCHECK(!state.empty());
  if (t <= state_time) {
    // Backward extrapolation is out of AR scope; report the marginal distribution.
    // (Past gaps are better served by the seasonal part / spatial conditioning.)
    return Prediction{mean, marginal_std};
  }
  int64_t k = (t - state_time + sample_period / 2) / sample_period;
  if (k <= 0) {
    return Prediction{state.back(), std::max(innovation_std, 1e-9)};
  }
  if (k > max_forecast_steps) {
    return Prediction{mean, marginal_std};
  }
  std::vector<double> window = state;
  for (int64_t i = 0; i < k; ++i) {
    const double next = StepOnce(window);
    window.erase(window.begin());
    window.push_back(next);
  }
  return Prediction{window.back(), std::max(horizon_std[static_cast<size_t>(k)], 1e-9)};
}

void ArCore::Anchor(const Sample& s) {
  PRESTO_DCHECK(!state.empty());
  if (s.t <= state_time) {
    return;  // stale (e.g. a pull of archived data); state reflects newest knowledge
  }
  int64_t k = (s.t - state_time + sample_period / 2) / sample_period;
  k = std::min<int64_t>(std::max<int64_t>(k, 1), max_forecast_steps);
  for (int64_t i = 0; i < k; ++i) {
    const double next = StepOnce(state);
    state.erase(state.begin());
    state.push_back(next);
  }
  // Attribute the innovation as a level shift across the whole lag window rather than
  // pinning only the newest entry: a lone corrected value next to stale forecasts
  // fabricates a trend, which inflates the push rate right after every anchor.
  const double innovation = s.value - state.back();
  for (double& v : state) {
    v += innovation;
  }
  state_time += k * sample_period;
}

void ArCore::SerializeTo(ByteWriter* w) const {
  w->WriteVarU64(static_cast<uint64_t>(sample_period));
  w->WriteVarU64(phi.size());
  for (double p : phi) {
    w->WriteF32(static_cast<float>(p));
  }
  w->WriteF32(static_cast<float>(mean));
  w->WriteF32(static_cast<float>(innovation_std));
  w->WriteF32(static_cast<float>(marginal_std));
  w->WriteI64(state_time);
  for (double v : state) {
    w->WriteF32(static_cast<float>(v));
  }
}

Status ArCore::DeserializeFrom(ByteReader* r) {
  auto period = r->ReadVarU64();
  auto order = r->ReadVarU64();
  if (!period.ok() || !order.ok() || *order == 0 || *order > 64) {
    return InvalidArgumentError("AR params malformed");
  }
  sample_period = static_cast<Duration>(*period);
  phi.clear();
  for (uint64_t i = 0; i < *order; ++i) {
    auto p = r->ReadF32();
    if (!p.ok()) {
      return InvalidArgumentError("AR params truncated");
    }
    phi.push_back(static_cast<double>(*p));
  }
  auto m = r->ReadF32();
  auto inno = r->ReadF32();
  auto marg = r->ReadF32();
  auto st = r->ReadI64();
  if (!m.ok() || !inno.ok() || !marg.ok() || !st.ok()) {
    return InvalidArgumentError("AR params truncated");
  }
  mean = static_cast<double>(*m);
  innovation_std = static_cast<double>(*inno);
  marginal_std = static_cast<double>(*marg);
  state_time = *st;
  state.clear();
  for (uint64_t i = 0; i < *order; ++i) {
    auto v = r->ReadF32();
    if (!v.ok()) {
      return InvalidArgumentError("AR state truncated");
    }
    state.push_back(static_cast<double>(*v));
  }
  ComputeHorizonStd();
  return OkStatus();
}

int64_t ArCore::ForecastCostOps(SimTime t) const {
  const int64_t k =
      t > state_time ? (t - state_time + sample_period / 2) / sample_period : 0;
  return 4 + static_cast<int64_t>(phi.size()) *
                 std::clamp<int64_t>(k, 1, max_forecast_steps);
}

// ---------- ArModel ----------

ArModel::ArModel(const ModelConfig& config) : config_(config) {
  core_.sample_period = config.sample_period;
  core_.max_forecast_steps = config.max_forecast_steps;
}

Status ArModel::Fit(const std::vector<Sample>& history) {
  if (history.empty()) {
    return FailedPreconditionError("AR fit: empty history");
  }
  PRESTO_RETURN_IF_ERROR(
      core_.Fit(ValuesOf(history), history.back().t, config_.ar_order));
  fitted_ = true;
  return OkStatus();
}

std::vector<uint8_t> ArModel::Serialize() const {
  PRESTO_CHECK_MSG(fitted_, "serialize before fit");
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(type()));
  core_.SerializeTo(&w);
  return w.TakeBuffer();
}

Status ArModel::Deserialize(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto tag = r.ReadU8();
  if (!tag.ok() || *tag != static_cast<uint8_t>(type())) {
    return InvalidArgumentError("not AR model params");
  }
  core_.max_forecast_steps = config_.max_forecast_steps;
  PRESTO_RETURN_IF_ERROR(core_.DeserializeFrom(&r));
  fitted_ = true;
  return OkStatus();
}

Prediction ArModel::Predict(SimTime t) const {
  PRESTO_CHECK_MSG(fitted_, "predict before fit");
  return core_.Forecast(t);
}

void ArModel::OnAnchor(const Sample& sample) {
  PRESTO_CHECK_MSG(fitted_, "anchor before fit");
  core_.Anchor(sample);
}

int64_t ArModel::PredictCostOps() const {
  // One-step check cost at the sensor (the common case: checking the next sample).
  return 4 + static_cast<int64_t>(core_.phi.size());
}

int64_t ArModel::FitCostOps(size_t history_len) const {
  const int64_t p = config_.ar_order;
  return static_cast<int64_t>(history_len) * (p + 2) + p * p * p;
}

// ---------- SeasonalArModel ----------

SeasonalArModel::SeasonalArModel(const ModelConfig& config) : config_(config) {
  core_.sample_period = config.sample_period;
  core_.max_forecast_steps = config.max_forecast_steps;
}

Status SeasonalArModel::Fit(const std::vector<Sample>& history) {
  if (history.empty()) {
    return FailedPreconditionError("seasonal-AR fit: empty history");
  }
  bins_.period = config_.seasonal_period;
  PRESTO_RETURN_IF_ERROR(bins_.Fit(history, config_.seasonal_bins));
  std::vector<double> residuals;
  residuals.reserve(history.size());
  for (const Sample& s : history) {
    residuals.push_back(s.value - bins_.ValueAt(s.t));
  }
  PRESTO_RETURN_IF_ERROR(core_.Fit(residuals, history.back().t, config_.ar_order));
  fitted_ = true;
  return OkStatus();
}

std::vector<uint8_t> SeasonalArModel::Serialize() const {
  PRESTO_CHECK_MSG(fitted_, "serialize before fit");
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(type()));
  bins_.SerializeTo(&w);
  core_.SerializeTo(&w);
  return w.TakeBuffer();
}

Status SeasonalArModel::Deserialize(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto tag = r.ReadU8();
  if (!tag.ok() || *tag != static_cast<uint8_t>(type())) {
    return InvalidArgumentError("not seasonal-AR model params");
  }
  PRESTO_RETURN_IF_ERROR(bins_.DeserializeFrom(&r));
  core_.max_forecast_steps = config_.max_forecast_steps;
  PRESTO_RETURN_IF_ERROR(core_.DeserializeFrom(&r));
  fitted_ = true;
  return OkStatus();
}

Prediction SeasonalArModel::Predict(SimTime t) const {
  PRESTO_CHECK_MSG(fitted_, "predict before fit");
  const Prediction residual = core_.Forecast(t);
  double stddev = residual.stddev;
  if (t <= core_.state_time) {
    // Past gap: the climatology still applies; use the bin spread.
    stddev = std::max(bins_.StddevAt(t) * 0.5, residual.stddev * 0.5);
  }
  return Prediction{bins_.ValueAt(t) + residual.value, stddev};
}

void SeasonalArModel::OnAnchor(const Sample& sample) {
  PRESTO_CHECK_MSG(fitted_, "anchor before fit");
  core_.Anchor(Sample{sample.t, sample.value - bins_.ValueAt(sample.t)});
}

int64_t SeasonalArModel::PredictCostOps() const {
  return 12 + static_cast<int64_t>(core_.phi.size());
}

int64_t SeasonalArModel::FitCostOps(size_t history_len) const {
  const int64_t p = config_.ar_order;
  return static_cast<int64_t>(history_len) * (p + 6) + p * p * p;
}

void ArCore::SaveCkpt(ByteWriter& w) const {
  CkptWrite(w, sample_period);
  CkptWrite(w, max_forecast_steps);
  CkptWrite(w, phi);
  CkptWrite(w, mean);
  CkptWrite(w, innovation_std);
  CkptWrite(w, marginal_std);
  CkptWrite(w, state);
  CkptWrite(w, state_time);
  CkptWrite(w, horizon_std);
}

Status ArCore::LoadCkpt(ByteReader& r) {
  CKPT_READ(r, sample_period);
  CKPT_READ(r, max_forecast_steps);
  CKPT_READ(r, phi);
  CKPT_READ(r, mean);
  CKPT_READ(r, innovation_std);
  CKPT_READ(r, marginal_std);
  CKPT_READ(r, state);
  CKPT_READ(r, state_time);
  CKPT_READ(r, horizon_std);
  return OkStatus();
}

void ArModel::SaveState(ByteWriter& w) const {
  CkptWrite(w, fitted_);
  core_.SaveCkpt(w);
}

Status ArModel::LoadState(ByteReader& r) {
  CKPT_READ(r, fitted_);
  return core_.LoadCkpt(r);
}

void SeasonalArModel::SaveState(ByteWriter& w) const {
  CkptWrite(w, fitted_);
  bins_.SaveCkpt(w);
  core_.SaveCkpt(w);
}

Status SeasonalArModel::LoadState(ByteReader& r) {
  CKPT_READ(r, fitted_);
  PRESTO_RETURN_IF_ERROR(bins_.LoadCkpt(r));
  return core_.LoadCkpt(r);
}

}  // namespace presto
