#include "src/models/markov.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"
#include "src/util/ckpt.h"
#include "src/util/bytes.h"

namespace presto {
namespace {

constexpr int kMaxPowerBits = 13;  // horizons up to 2^13 - 1 steps

std::vector<std::vector<double>> MatSquare(const std::vector<std::vector<double>>& m) {
  const size_t n = m.size();
  std::vector<std::vector<double>> out(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < n; ++k) {
      const double a = m[i][k];
      if (a == 0.0) {
        continue;
      }
      for (size_t j = 0; j < n; ++j) {
        out[i][j] += a * m[k][j];
      }
    }
  }
  return out;
}

std::vector<double> VecMat(const std::vector<double>& v,
                           const std::vector<std::vector<double>>& m) {
  const size_t n = v.size();
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double a = v[i];
    if (a == 0.0) {
      continue;
    }
    for (size_t j = 0; j < n; ++j) {
      out[j] += a * m[i][j];
    }
  }
  return out;
}

}  // namespace

int MarkovModel::StateOf(double value) const {
  PRESTO_DCHECK(!centers_.empty());
  // Nearest center (centers are uniformly spaced).
  int best = 0;
  double best_d = std::abs(value - centers_[0]);
  for (int i = 1; i < num_states(); ++i) {
    const double d = std::abs(value - centers_[static_cast<size_t>(i)]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

Status MarkovModel::Fit(const std::vector<Sample>& history) {
  const int k = config_.markov_states;
  PRESTO_CHECK(k >= 2);
  if (history.size() < static_cast<size_t>(4 * k)) {
    return FailedPreconditionError("markov fit: history too short");
  }
  double lo = history[0].value;
  double hi = history[0].value;
  for (const Sample& s : history) {
    lo = std::min(lo, s.value);
    hi = std::max(hi, s.value);
  }
  if (hi - lo < 1e-9) {
    hi = lo + 1e-9;
  }
  const double width = (hi - lo) / k;
  bin_half_width_ = width / 2.0;
  centers_.assign(static_cast<size_t>(k), 0.0);
  for (int i = 0; i < k; ++i) {
    centers_[static_cast<size_t>(i)] = lo + width * (i + 0.5);
  }

  // Transition counts with Laplace smoothing; empirical marginal.
  std::vector<std::vector<double>> counts(static_cast<size_t>(k),
                                          std::vector<double>(static_cast<size_t>(k),
                                                              0.5));
  marginal_.assign(static_cast<size_t>(k), 1e-6);
  int prev = StateOf(history[0].value);
  marginal_[static_cast<size_t>(prev)] += 1.0;
  for (size_t i = 1; i < history.size(); ++i) {
    const int cur = StateOf(history[i].value);
    counts[static_cast<size_t>(prev)][static_cast<size_t>(cur)] += 1.0;
    marginal_[static_cast<size_t>(cur)] += 1.0;
    prev = cur;
  }
  double msum = 0.0;
  for (double m : marginal_) {
    msum += m;
  }
  for (double& m : marginal_) {
    m /= msum;
  }
  trans_ = counts;
  for (auto& row : trans_) {
    double rsum = 0.0;
    for (double c : row) {
      rsum += c;
    }
    for (double& c : row) {
      c /= rsum;
    }
  }
  // Round everything through the wire precision (u8 probabilities, f32 scalars) so the
  // proxy's copy and the sensor's deserialized copy are bit-identical — the lockstep
  // contract in model.h depends on it.
  QuantizeToWirePrecision();
  BuildPowerCache();
  fitted_ = true;
  anchored_ = false;
  return OkStatus();
}

void MarkovModel::QuantizeToWirePrecision() {
  bin_half_width_ = static_cast<double>(static_cast<float>(bin_half_width_));
  for (double& c : centers_) {
    c = static_cast<double>(static_cast<float>(c));
  }
  // Largest-remainder apportionment onto integers summing to exactly 255: Serialize's
  // round(p * 255) then recovers those integers bit-exactly, and the decoder's
  // normalization (divide by 255) reproduces these probabilities.
  auto quantize_row = [](std::vector<double>& row) {
    double sum = 0.0;
    for (double p : row) {
      sum += p;
    }
    PRESTO_CHECK(sum > 0.0);
    std::vector<int> units(row.size());
    std::vector<std::pair<double, size_t>> remainders;
    int assigned = 0;
    for (size_t i = 0; i < row.size(); ++i) {
      const double exact = row[i] / sum * 255.0;
      units[i] = static_cast<int>(exact);
      assigned += units[i];
      remainders.emplace_back(exact - units[i], i);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (int extra = 0; extra < 255 - assigned; ++extra) {
      ++units[remainders[static_cast<size_t>(extra)].second];
    }
    for (size_t i = 0; i < row.size(); ++i) {
      row[i] = units[i] / 255.0;
    }
  };
  for (auto& row : trans_) {
    quantize_row(row);
  }
  quantize_row(marginal_);
}

void MarkovModel::BuildPowerCache() {
  power_cache_.clear();
  power_cache_.push_back(trans_);
  for (int i = 1; i < kMaxPowerBits; ++i) {
    power_cache_.push_back(MatSquare(power_cache_.back()));
  }
}

std::vector<double> MarkovModel::Evolve(int start, int64_t k) const {
  std::vector<double> dist(static_cast<size_t>(num_states()), 0.0);
  dist[static_cast<size_t>(start)] = 1.0;
  if (k >= (1LL << kMaxPowerBits)) {
    return marginal_;  // long horizon: effectively mixed
  }
  for (int bit = 0; bit < kMaxPowerBits; ++bit) {
    if ((k >> bit) & 1) {
      dist = VecMat(dist, power_cache_[static_cast<size_t>(bit)]);
    }
  }
  return dist;
}

Prediction MarkovModel::FromDistribution(const std::vector<double>& dist) const {
  double mean = 0.0;
  for (int i = 0; i < num_states(); ++i) {
    mean += dist[static_cast<size_t>(i)] * centers_[static_cast<size_t>(i)];
  }
  double var = bin_half_width_ * bin_half_width_ / 3.0;  // within-bin (uniform) variance
  for (int i = 0; i < num_states(); ++i) {
    const double d = centers_[static_cast<size_t>(i)] - mean;
    var += dist[static_cast<size_t>(i)] * d * d;
  }
  return Prediction{mean, std::sqrt(var)};
}

Prediction MarkovModel::Predict(SimTime t) const {
  PRESTO_CHECK_MSG(fitted_, "predict before fit");
  if (!anchored_ || t < anchor_time_) {
    return FromDistribution(marginal_);
  }
  const int64_t k =
      (t - anchor_time_ + config_.sample_period / 2) / config_.sample_period;
  if (k == 0) {
    return Prediction{centers_[static_cast<size_t>(anchor_state_)],
                      std::max(bin_half_width_ / std::sqrt(3.0), 1e-9)};
  }
  return FromDistribution(Evolve(anchor_state_, k));
}

void MarkovModel::OnAnchor(const Sample& sample) {
  PRESTO_CHECK_MSG(fitted_, "anchor before fit");
  if (anchored_ && sample.t < anchor_time_) {
    return;
  }
  anchor_state_ = StateOf(sample.value);
  anchor_time_ = sample.t;
  anchored_ = true;
}

std::vector<uint8_t> MarkovModel::Serialize() const {
  PRESTO_CHECK_MSG(fitted_, "serialize before fit");
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(type()));
  w.WriteVarU64(static_cast<uint64_t>(config_.sample_period));
  w.WriteVarU64(static_cast<uint64_t>(num_states()));
  w.WriteF32(static_cast<float>(bin_half_width_));
  for (double c : centers_) {
    w.WriteF32(static_cast<float>(c));
  }
  // Probabilities quantized to 1/255 steps; rows re-normalized on decode.
  for (const auto& row : trans_) {
    for (double p : row) {
      w.WriteU8(static_cast<uint8_t>(std::lround(std::clamp(p, 0.0, 1.0) * 255.0)));
    }
  }
  for (double m : marginal_) {
    w.WriteU8(static_cast<uint8_t>(std::lround(std::clamp(m, 0.0, 1.0) * 255.0)));
  }
  return w.TakeBuffer();
}

Status MarkovModel::Deserialize(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto tag = r.ReadU8();
  if (!tag.ok() || *tag != static_cast<uint8_t>(type())) {
    return InvalidArgumentError("not markov model params");
  }
  auto period = r.ReadVarU64();
  auto k = r.ReadVarU64();
  auto half = r.ReadF32();
  if (!period.ok() || !k.ok() || !half.ok() || *k < 2 || *k > 64) {
    return InvalidArgumentError("markov params malformed");
  }
  config_.sample_period = static_cast<Duration>(*period);
  bin_half_width_ = static_cast<double>(*half);
  const int n = static_cast<int>(*k);
  centers_.assign(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    auto c = r.ReadF32();
    if (!c.ok()) {
      return InvalidArgumentError("markov params truncated");
    }
    centers_[static_cast<size_t>(i)] = static_cast<double>(*c);
  }
  trans_.assign(static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n), 0.0));
  for (int i = 0; i < n; ++i) {
    double rsum = 0.0;
    for (int j = 0; j < n; ++j) {
      auto q = r.ReadU8();
      if (!q.ok()) {
        return InvalidArgumentError("markov params truncated");
      }
      trans_[static_cast<size_t>(i)][static_cast<size_t>(j)] = *q;
      rsum += *q;
    }
    if (rsum <= 0.0) {
      return InvalidArgumentError("markov row sums to zero");
    }
    for (int j = 0; j < n; ++j) {
      trans_[static_cast<size_t>(i)][static_cast<size_t>(j)] /= rsum;
    }
  }
  marginal_.assign(static_cast<size_t>(n), 0.0);
  double msum = 0.0;
  for (int i = 0; i < n; ++i) {
    auto q = r.ReadU8();
    if (!q.ok()) {
      return InvalidArgumentError("markov params truncated");
    }
    marginal_[static_cast<size_t>(i)] = *q;
    msum += *q;
  }
  if (msum <= 0.0) {
    return InvalidArgumentError("markov marginal sums to zero");
  }
  for (double& m : marginal_) {
    m /= msum;
  }
  BuildPowerCache();
  fitted_ = true;
  anchored_ = false;
  return OkStatus();
}

int64_t MarkovModel::PredictCostOps() const {
  // One-step check: one vector-matrix product row.
  return 4 + num_states();
}

int64_t MarkovModel::FitCostOps(size_t history_len) const {
  const int64_t k = config_.markov_states;
  return static_cast<int64_t>(history_len) * k + k * k * k * kMaxPowerBits;
}

void MarkovModel::SaveState(ByteWriter& w) const {
  CkptWrite(w, fitted_);
  CkptWrite(w, anchored_);
  CkptWrite(w, centers_);
  CkptWrite(w, trans_);
  CkptWrite(w, marginal_);
  CkptWrite(w, bin_half_width_);
  CkptWrite(w, anchor_state_);
  CkptWrite(w, anchor_time_);
}

Status MarkovModel::LoadState(ByteReader& r) {
  CKPT_READ(r, fitted_);
  CKPT_READ(r, anchored_);
  CKPT_READ(r, centers_);
  CKPT_READ(r, trans_);
  CKPT_READ(r, marginal_);
  CKPT_READ(r, bin_half_width_);
  CKPT_READ(r, anchor_state_);
  CKPT_READ(r, anchor_time_);
  // The binary-power cache is a pure function of the transition matrix; rebuild it
  // rather than shipping O(states^2 log horizon) doubles in every checkpoint.
  if (fitted_) {
    BuildPowerCache();
  } else {
    power_cache_.clear();
  }
  return OkStatus();
}

}  // namespace presto
