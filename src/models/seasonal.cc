#include "src/models/seasonal.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"
#include "src/util/ckpt.h"

namespace presto {

// ---------- SeasonalBins ----------

int SeasonalBins::BinOf(SimTime t) const {
  PRESTO_DCHECK(!means.empty());
  const Duration phase = ((t % period) + period) % period;
  const int bin = static_cast<int>(phase * static_cast<Duration>(means.size()) / period);
  return std::min(bin, static_cast<int>(means.size()) - 1);
}

double SeasonalBins::ValueAt(SimTime t) const {
  PRESTO_DCHECK(!means.empty());
  const int n = static_cast<int>(means.size());
  const Duration bin_width = period / n;
  const Duration phase = ((t % period) + period) % period;
  // Interpolate between the centers of the two surrounding bins.
  const double pos = (static_cast<double>(phase) / static_cast<double>(bin_width)) - 0.5;
  const int lo = static_cast<int>(std::floor(pos));
  const double frac = pos - std::floor(pos);
  const int a = ((lo % n) + n) % n;
  const int b = (a + 1) % n;
  return means[static_cast<size_t>(a)] * (1.0 - frac) +
         means[static_cast<size_t>(b)] * frac;
}

double SeasonalBins::StddevAt(SimTime t) const {
  return stddevs[static_cast<size_t>(BinOf(t))];
}

Status SeasonalBins::Fit(const std::vector<Sample>& history, int bins) {
  PRESTO_CHECK(bins > 0);
  std::vector<double> sums(static_cast<size_t>(bins), 0.0);
  std::vector<double> sq(static_cast<size_t>(bins), 0.0);
  std::vector<int64_t> counts(static_cast<size_t>(bins), 0);
  means.assign(static_cast<size_t>(bins), 0.0);
  stddevs.assign(static_cast<size_t>(bins), 0.0);
  for (const Sample& s : history) {
    const int b = BinOf(s.t);
    sums[static_cast<size_t>(b)] += s.value;
    sq[static_cast<size_t>(b)] += s.value * s.value;
    ++counts[static_cast<size_t>(b)];
  }
  for (int b = 0; b < bins; ++b) {
    if (counts[static_cast<size_t>(b)] == 0) {
      return FailedPreconditionError("seasonal fit: a bin has no samples");
    }
    const double n = static_cast<double>(counts[static_cast<size_t>(b)]);
    means[static_cast<size_t>(b)] = sums[static_cast<size_t>(b)] / n;
    const double var =
        std::max(0.0, sq[static_cast<size_t>(b)] / n -
                          means[static_cast<size_t>(b)] * means[static_cast<size_t>(b)]);
    stddevs[static_cast<size_t>(b)] = std::sqrt(var);
    // Wire precision is float32; keep the in-RAM copy identical (lockstep contract).
    means[static_cast<size_t>(b)] =
        static_cast<double>(static_cast<float>(means[static_cast<size_t>(b)]));
    stddevs[static_cast<size_t>(b)] =
        static_cast<double>(static_cast<float>(stddevs[static_cast<size_t>(b)]));
  }
  return OkStatus();
}

void SeasonalBins::SerializeTo(ByteWriter* w) const {
  w->WriteVarU64(static_cast<uint64_t>(period));
  w->WriteVarU64(means.size());
  for (size_t i = 0; i < means.size(); ++i) {
    w->WriteF32(static_cast<float>(means[i]));
    w->WriteF32(static_cast<float>(stddevs[i]));
  }
}

Status SeasonalBins::DeserializeFrom(ByteReader* r) {
  auto p = r->ReadVarU64();
  if (!p.ok()) {
    return p.status();
  }
  period = static_cast<Duration>(*p);
  auto n = r->ReadVarU64();
  if (!n.ok()) {
    return n.status();
  }
  means.clear();
  stddevs.clear();
  for (uint64_t i = 0; i < *n; ++i) {
    auto m = r->ReadF32();
    auto s = r->ReadF32();
    if (!m.ok() || !s.ok()) {
      return InvalidArgumentError("seasonal params truncated");
    }
    means.push_back(static_cast<double>(*m));
    stddevs.push_back(static_cast<double>(*s));
  }
  if (means.empty()) {
    return InvalidArgumentError("seasonal params empty");
  }
  return OkStatus();
}

// ---------- SeasonalModel ----------

Status SeasonalModel::Fit(const std::vector<Sample>& history) {
  bins_.period = config_.seasonal_period;
  PRESTO_RETURN_IF_ERROR(bins_.Fit(history, config_.seasonal_bins));
  fitted_ = true;
  return OkStatus();
}

std::vector<uint8_t> SeasonalModel::Serialize() const {
  PRESTO_CHECK_MSG(fitted_, "serialize before fit");
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(type()));
  bins_.SerializeTo(&w);
  return w.TakeBuffer();
}

Status SeasonalModel::Deserialize(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto tag = r.ReadU8();
  if (!tag.ok() || *tag != static_cast<uint8_t>(type())) {
    return InvalidArgumentError("not seasonal model params");
  }
  PRESTO_RETURN_IF_ERROR(bins_.DeserializeFrom(&r));
  fitted_ = true;
  return OkStatus();
}

Prediction SeasonalModel::Predict(SimTime t) const {
  PRESTO_CHECK_MSG(fitted_, "predict before fit");
  return Prediction{bins_.ValueAt(t), bins_.StddevAt(t)};
}

void SeasonalModel::OnAnchor(const Sample& sample) {
  // Climatology ignores individual observations by design.
  (void)sample;
}

// ---------- LastValueModel ----------

Status LastValueModel::Fit(const std::vector<Sample>& history) {
  if (history.size() < 8) {
    return FailedPreconditionError("last-value fit needs >= 8 samples for stable sigmas");
  }
  double sum = 0.0;
  double sq = 0.0;
  for (const Sample& s : history) {
    sum += s.value;
    sq += s.value * s.value;
  }
  const double n = static_cast<double>(history.size());
  mean_ = sum / n;
  marginal_stddev_ = std::sqrt(std::max(0.0, sq / n - mean_ * mean_));

  double dsq = 0.0;
  for (size_t i = 1; i < history.size(); ++i) {
    const double d = history[i].value - history[i - 1].value;
    dsq += d * d;
  }
  step_stddev_ = std::sqrt(dsq / (n - 1.0));
  fitted_ = true;
  anchored_ = false;
  return OkStatus();
}

std::vector<uint8_t> LastValueModel::Serialize() const {
  PRESTO_CHECK_MSG(fitted_, "serialize before fit");
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(type()));
  w.WriteVarU64(static_cast<uint64_t>(config_.sample_period));
  w.WriteF32(static_cast<float>(mean_));
  w.WriteF32(static_cast<float>(marginal_stddev_));
  w.WriteF32(static_cast<float>(step_stddev_));
  return w.TakeBuffer();
}

Status LastValueModel::Deserialize(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto tag = r.ReadU8();
  if (!tag.ok() || *tag != static_cast<uint8_t>(type())) {
    return InvalidArgumentError("not last-value model params");
  }
  auto period = r.ReadVarU64();
  auto mean = r.ReadF32();
  auto marg = r.ReadF32();
  auto step = r.ReadF32();
  if (!period.ok() || !mean.ok() || !marg.ok() || !step.ok()) {
    return InvalidArgumentError("last-value params truncated");
  }
  config_.sample_period = static_cast<Duration>(*period);
  mean_ = static_cast<double>(*mean);
  marginal_stddev_ = static_cast<double>(*marg);
  step_stddev_ = static_cast<double>(*step);
  fitted_ = true;
  anchored_ = false;
  return OkStatus();
}

Prediction LastValueModel::Predict(SimTime t) const {
  PRESTO_CHECK_MSG(fitted_, "predict before fit");
  if (!anchored_ || t < anchor_.t) {
    return Prediction{mean_, std::max(marginal_stddev_, 1e-9)};
  }
  const double steps =
      static_cast<double>(t - anchor_.t) / static_cast<double>(config_.sample_period);
  const double grow = step_stddev_ * std::sqrt(std::max(steps, 0.0));
  return Prediction{anchor_.value, std::min(std::max(grow, 1e-9),
                                            2.0 * marginal_stddev_)};
}

void LastValueModel::OnAnchor(const Sample& sample) {
  if (anchored_ && sample.t < anchor_.t) {
    return;  // stale anchor (a pull of past data); persistence keeps the newest
  }
  anchor_ = sample;
  anchored_ = true;
}

void SeasonalBins::SaveCkpt(ByteWriter& w) const {
  CkptWrite(w, period);
  CkptWrite(w, means);
  CkptWrite(w, stddevs);
}

Status SeasonalBins::LoadCkpt(ByteReader& r) {
  CKPT_READ(r, period);
  CKPT_READ(r, means);
  CKPT_READ(r, stddevs);
  return OkStatus();
}

void SeasonalModel::SaveState(ByteWriter& w) const {
  CkptWrite(w, fitted_);
  bins_.SaveCkpt(w);
}

Status SeasonalModel::LoadState(ByteReader& r) {
  CKPT_READ(r, fitted_);
  return bins_.LoadCkpt(r);
}

void LastValueModel::SaveState(ByteWriter& w) const {
  CkptWrite(w, fitted_);
  CkptWrite(w, anchored_);
  CkptWrite(w, mean_);
  CkptWrite(w, marginal_stddev_);
  CkptWrite(w, step_stddev_);
  CkptWrite(w, anchor_);
}

Status LastValueModel::LoadState(ByteReader& r) {
  CKPT_READ(r, fitted_);
  CKPT_READ(r, anchored_);
  CKPT_READ(r, mean_);
  CKPT_READ(r, marginal_stddev_);
  CKPT_READ(r, step_stddev_);
  CKPT_READ(r, anchor_);
  return OkStatus();
}

}  // namespace presto
