// Autoregressive temporal models (paper §3: "simple regression techniques and
// time-series analysis techniques may be used to model many temporal phenomena").
//
// ArCore is the shared engine: AR(p) coefficients fitted by Yule-Walker/Levinson-
// Durbin, a rolling state of the last p grid values, multi-step forecasts with
// psi-weight variance growth. ArModel applies it to raw values; SeasonalArModel applies
// it to residuals around a seasonal-bin climatology (a SARIMA-flavoured combination,
// the strongest model for diurnal data like temperature).

#ifndef SRC_MODELS_AR_H_
#define SRC_MODELS_AR_H_

#include <vector>

#include "src/models/model.h"
#include "src/models/seasonal.h"
#include "src/util/bytes.h"

namespace presto {

// AR(p) forecasting machinery on a fixed sampling grid.
struct ArCore {
  Duration sample_period = Seconds(31);
  int max_forecast_steps = 4096;

  std::vector<double> phi;     // AR coefficients, phi[0] multiplies the newest value
  double mean = 0.0;           // level the AR process reverts to
  double innovation_std = 0.0; // one-step noise sigma
  double marginal_std = 0.0;   // series sigma (forecast-variance ceiling)

  // Rolling state: the last p values on the grid (newest last) and the grid time of the
  // newest entry. Mirrored at proxy and sensor through anchors.
  std::vector<double> state;
  SimTime state_time = 0;

  // Cumulative forecast stddev by horizon (index k = k-step-ahead), from psi weights.
  std::vector<double> horizon_std;

  // Fits phi/mean/sigmas from a regular time-ordered series and initializes the state
  // from its tail. `values[i]` is at `start + i * sample_period`.
  Status Fit(const std::vector<double>& values, SimTime last_sample_time, int order);

  // Forecast at absolute time t. Rolls a copy of the state forward (never mutates).
  Prediction Forecast(SimTime t) const;

  // Advances the state to `s.t` (predicting the gap) and pins the newest value to the
  // observed one.
  void Anchor(const Sample& s);

  void SerializeTo(ByteWriter* w) const;
  Status DeserializeFrom(ByteReader* r);

  // Full-precision checkpoint codec (the wire form above rounds through f32).
  void SaveCkpt(ByteWriter& w) const;
  Status LoadCkpt(ByteReader& r);

  int64_t ForecastCostOps(SimTime t) const;

 private:
  double StepOnce(const std::vector<double>& window) const;
  void ComputeHorizonStd();
};

// Plain AR(p) on the observed values.
class ArModel : public PredictiveModel {
 public:
  explicit ArModel(const ModelConfig& config);

  ModelType type() const override { return ModelType::kAr; }
  Status Fit(const std::vector<Sample>& history) override;
  std::vector<uint8_t> Serialize() const override;
  Status Deserialize(span<const uint8_t> bytes) override;
  Prediction Predict(SimTime t) const override;
  void OnAnchor(const Sample& sample) override;
  int64_t PredictCostOps() const override;
  int64_t FitCostOps(size_t history_len) const override;
  std::unique_ptr<PredictiveModel> Clone() const override {
    return std::make_unique<ArModel>(*this);
  }
  void SaveState(ByteWriter& w) const override;
  Status LoadState(ByteReader& r) override;

 private:
  ModelConfig config_;
  ArCore core_;
  bool fitted_ = false;
};

// Seasonal bins plus AR(p) on the de-seasonalized residual.
class SeasonalArModel : public PredictiveModel {
 public:
  explicit SeasonalArModel(const ModelConfig& config);

  ModelType type() const override { return ModelType::kSeasonalAr; }
  Status Fit(const std::vector<Sample>& history) override;
  std::vector<uint8_t> Serialize() const override;
  Status Deserialize(span<const uint8_t> bytes) override;
  Prediction Predict(SimTime t) const override;
  void OnAnchor(const Sample& sample) override;
  int64_t PredictCostOps() const override;
  int64_t FitCostOps(size_t history_len) const override;
  std::unique_ptr<PredictiveModel> Clone() const override {
    return std::make_unique<SeasonalArModel>(*this);
  }
  void SaveState(ByteWriter& w) const override;
  Status LoadState(ByteReader& r) override;

 private:
  ModelConfig config_;
  SeasonalBins bins_;
  ArCore core_;  // runs on residuals (value - seasonal)
  bool fitted_ = false;
};

}  // namespace presto

#endif  // SRC_MODELS_AR_H_
