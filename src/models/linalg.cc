#include "src/models/linalg.h"

#include <cmath>

#include "src/util/assert.h"

namespace presto {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
  PRESTO_CHECK(rows >= 0 && cols >= 0);
}

double& Matrix::At(int r, int c) {
  PRESTO_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

double Matrix::At(int r, int c) const {
  PRESTO_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) {
    m.At(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      t.At(c, r) = At(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  PRESTO_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) {
        continue;
      }
      for (int c = 0; c < other.cols_; ++c) {
        out.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVec(const std::vector<double>& v) const {
  PRESTO_CHECK(static_cast<int>(v.size()) == cols_);
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int c = 0; c < cols_; ++c) {
      sum += At(r, c) * v[static_cast<size_t>(c)];
    }
    out[static_cast<size_t>(r)] = sum;
  }
  return out;
}

Result<Matrix> CholeskyFactor(const Matrix& a) {
  PRESTO_CHECK(a.rows() == a.cols());
  const int n = a.rows();
  Matrix l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (int k = 0; k < j; ++k) {
        sum -= l.At(i, k) * l.At(j, k);
      }
      if (i == j) {
        if (sum <= 0.0) {
          return FailedPreconditionError("matrix not positive definite");
        }
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  return l;
}

std::vector<double> CholeskySolve(const Matrix& l, const std::vector<double>& b) {
  const int n = l.rows();
  PRESTO_CHECK(static_cast<int>(b.size()) == n);
  // Forward substitution: L y = b.
  std::vector<double> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) {
      sum -= l.At(i, k) * y[static_cast<size_t>(k)];
    }
    y[static_cast<size_t>(i)] = sum / l.At(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(static_cast<size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    double sum = y[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) {
      sum -= l.At(k, i) * x[static_cast<size_t>(k)];
    }
    x[static_cast<size_t>(i)] = sum / l.At(i, i);
  }
  return x;
}

Result<std::vector<double>> SolveSpd(Matrix a, const std::vector<double>& b,
                                     double ridge) {
  if (ridge > 0.0) {
    for (int i = 0; i < a.rows(); ++i) {
      a.At(i, i) += ridge;
    }
  }
  auto l = CholeskyFactor(a);
  if (!l.ok()) {
    return l.status();
  }
  return CholeskySolve(*l, b);
}

Result<YuleWalkerFit> LevinsonDurbin(const std::vector<double>& autocov) {
  PRESTO_CHECK(!autocov.empty());
  const int p = static_cast<int>(autocov.size()) - 1;
  if (autocov[0] <= 0.0) {
    return FailedPreconditionError("zero-variance series");
  }
  YuleWalkerFit fit;
  fit.phi.assign(static_cast<size_t>(p), 0.0);
  double error = autocov[0];
  std::vector<double> prev(static_cast<size_t>(p), 0.0);
  for (int k = 1; k <= p; ++k) {
    double acc = autocov[static_cast<size_t>(k)];
    for (int j = 1; j < k; ++j) {
      acc -= prev[static_cast<size_t>(j - 1)] * autocov[static_cast<size_t>(k - j)];
    }
    const double reflection = acc / error;
    fit.phi[static_cast<size_t>(k - 1)] = reflection;
    for (int j = 1; j < k; ++j) {
      fit.phi[static_cast<size_t>(j - 1)] =
          prev[static_cast<size_t>(j - 1)] -
          reflection * prev[static_cast<size_t>(k - j - 1)];
    }
    error *= (1.0 - reflection * reflection);
    if (error <= 0.0) {
      error = 1e-12;  // numerically perfect fit; keep variance positive
    }
    prev = fit.phi;
  }
  fit.innovation_variance = error;
  return fit;
}

std::vector<double> Autocovariance(const std::vector<double>& x, int max_lag) {
  const int n = static_cast<int>(x.size());
  PRESTO_CHECK(max_lag >= 0);
  std::vector<double> out(static_cast<size_t>(max_lag) + 1, 0.0);
  if (n == 0) {
    return out;
  }
  double mean = 0.0;
  for (double v : x) {
    mean += v;
  }
  mean /= n;
  for (int lag = 0; lag <= max_lag && lag < n; ++lag) {
    double sum = 0.0;
    for (int i = 0; i + lag < n; ++i) {
      sum += (x[static_cast<size_t>(i)] - mean) *
             (x[static_cast<size_t>(i + lag)] - mean);
    }
    out[static_cast<size_t>(lag)] = sum / n;  // biased, guarantees a PSD sequence
  }
  return out;
}

Result<std::pair<double, double>> FitLine(const std::vector<double>& x,
                                          const std::vector<double>& y) {
  PRESTO_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) {
    return FailedPreconditionError("need at least 2 points for a line");
  }
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    return FailedPreconditionError("degenerate x values");
  }
  const double slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / static_cast<double>(n);
  return std::make_pair(intercept, slope);
}

}  // namespace presto
