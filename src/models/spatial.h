// Multivariate-Gaussian spatial model (paper §3: "cached data from other nearby sensors
// ... can be used for such extrapolation", following the BBQ/TinyDB approach [5]).
//
// The proxy fits a joint Gaussian over the sensors it manages; when one sensor's data
// is missing (suppressed, lost, or the sensor failed), the conditional distribution
// given the neighbours' values yields an extrapolated value with an honest variance.

#ifndef SRC_MODELS_SPATIAL_H_
#define SRC_MODELS_SPATIAL_H_

#include <utility>
#include <vector>

#include "src/models/linalg.h"
#include "src/models/model.h"

namespace presto {

class SpatialGaussianModel {
 public:
  // Fits mean vector and covariance from snapshots: `rows[t]` holds the values of all
  // `dims` sensors at aligned time t. Needs more rows than dims for a usable estimate.
  Status Fit(const std::vector<std::vector<double>>& rows);

  int dims() const { return static_cast<int>(mean_.size()); }
  bool fitted() const { return fitted_; }

  const std::vector<double>& mean() const { return mean_; }
  double Covariance(int i, int j) const { return cov_.At(i, j); }
  // Pearson correlation between two sensors.
  double Correlation(int i, int j) const;

  // Conditional N(mu, sigma^2) of sensor `target` given observed {sensor index, value}
  // pairs. An empty observation set returns the marginal.
  Result<Prediction> Condition(int target,
                               const std::vector<std::pair<int, double>>& observed) const;

 private:
  std::vector<double> mean_;
  Matrix cov_;
  bool fitted_ = false;
};

}  // namespace presto

#endif  // SRC_MODELS_SPATIAL_H_
