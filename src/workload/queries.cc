#include "src/workload/queries.h"

#include <algorithm>

#include "src/util/assert.h"

namespace presto {

QueryRequest DrawQueryRequest(Pcg32& rng, const QueryWorkloadParams& params,
                              SimTime t) {
  QueryRequest q;
  q.issue_at = t;
  q.sensor = static_cast<int>(rng.UniformInt(0, params.num_sensors - 1));
  q.past = rng.Bernoulli(params.past_fraction);
  if (q.past) {
    const double age_us =
        rng.Exponential(1.0 / static_cast<double>(params.mean_past_age));
    q.age = std::min(static_cast<Duration>(age_us), params.max_past_age);
    // Never ask for the future and keep the window inside the lived past.
    q.age = std::max<Duration>(q.age, params.past_window);
    q.age = std::min<Duration>(q.age, t);
    q.window = params.past_window;
  }
  q.tolerance = rng.Uniform(params.min_tolerance, params.max_tolerance);
  q.latency_bound =
      params.min_latency +
      static_cast<Duration>(
          rng.NextDouble() *
          static_cast<double>(params.max_latency - params.min_latency));
  return q;
}

TimeInterval PastRangeOf(const QueryRequest& request, SimTime now) {
  const SimTime start = std::max<SimTime>(0, now - request.age);
  return TimeInterval{start, std::min(now, start + request.window)};
}

std::vector<QueryRequest> GenerateQueries(const QueryWorkloadParams& params,
                                          TimeInterval interval) {
  PRESTO_CHECK(params.num_sensors >= 1);
  PRESTO_CHECK(params.queries_per_hour > 0.0);
  Pcg32 rng(params.seed, /*stream=*/0x515259);
  const double rate_per_us = params.queries_per_hour / static_cast<double>(kHour);
  std::vector<QueryRequest> out;
  SimTime t = interval.start;
  while (true) {
    t += static_cast<Duration>(rng.Exponential(rate_per_us));
    if (t >= interval.end) {
      break;
    }
    out.push_back(DrawQueryRequest(rng, params, t));
  }
  return out;
}

}  // namespace presto
