#include "src/workload/temperature.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"

namespace presto {

double TransientEvent::Contribution(SimTime t) const {
  if (t < start || t > EffectiveEnd()) {
    return 0.0;
  }
  const SimTime peak = start + rise;
  if (t <= peak) {
    const double frac = rise > 0
                            ? static_cast<double>(t - start) / static_cast<double>(rise)
                            : 1.0;
    return magnitude * frac;
  }
  const double tau = static_cast<double>(decay);
  return magnitude * std::exp(-static_cast<double>(t - peak) / tau);
}

TemperatureSignal::TemperatureSignal(const TemperatureParams& params)
    : params_(params),
      front_rng_(params.seed, /*stream=*/0x46524f4e54),
      event_rng_(params.seed, /*stream=*/0x45564e54) {}

double TemperatureSignal::BaseAt(SimTime t) {
  const double diurnal =
      params_.diurnal_amplitude_c *
      std::cos(2.0 * M_PI *
               static_cast<double>((t - params_.diurnal_peak) % kDay) /
               static_cast<double>(kDay));
  const double seasonal =
      params_.seasonal_amplitude_c *
      std::sin(2.0 * M_PI * static_cast<double>(t % params_.seasonal_period) /
               static_cast<double>(params_.seasonal_period));
  return params_.mean_c + diurnal + seasonal + FrontAt(t);
}

void TemperatureSignal::ExtendFronts(SimTime t) {
  const size_t needed = static_cast<size_t>(t / kHour) + 2;
  if (fronts_.size() >= needed) {
    return;
  }
  // Discrete OU: x_{k+1} = a x_k + sigma sqrt(1-a^2) eps, step = 1 hour.
  const double a = std::exp(-static_cast<double>(kHour) /
                            static_cast<double>(params_.front_timescale));
  const double step_std = params_.front_std_c * std::sqrt(1.0 - a * a);
  if (fronts_.empty()) {
    fronts_.push_back(front_rng_.Gaussian(0.0, params_.front_std_c));
  }
  while (fronts_.size() < needed) {
    fronts_.push_back(a * fronts_.back() + front_rng_.Gaussian(0.0, step_std));
  }
}

double TemperatureSignal::FrontAt(SimTime t) {
  ExtendFronts(t);
  const size_t k = static_cast<size_t>(t / kHour);
  const double frac =
      static_cast<double>(t % kHour) / static_cast<double>(kHour);
  return fronts_[k] * (1.0 - frac) + fronts_[k + 1] * frac;
}

void TemperatureSignal::ExtendEvents(SimTime t) {
  if (events_horizon_ > t) {
    return;  // already extended past t: read-only fast path (lane-parallel reads)
  }
  if (params_.events_per_day <= 0.0) {
    events_horizon_ = std::max(events_horizon_, t + kDay);
    return;
  }
  const double rate_per_us =
      params_.events_per_day / static_cast<double>(kDay);
  while (events_horizon_ <= t) {
    const double gap_us = event_rng_.Exponential(rate_per_us);
    events_horizon_ += static_cast<Duration>(gap_us);
    TransientEvent e;
    e.start = events_horizon_;
    const double sign = event_rng_.Bernoulli(0.5) ? 1.0 : -1.0;
    e.magnitude = sign * params_.event_magnitude_c *
                  (0.6 + 0.8 * event_rng_.NextDouble());
    e.rise = params_.event_rise;
    e.decay = params_.event_decay;
    events_.push_back(e);
  }
}

std::vector<TransientEvent> TemperatureSignal::EventsIn(TimeInterval interval) {
  ExtendEvents(interval.end);
  std::vector<TransientEvent> out;
  for (const TransientEvent& e : events_) {
    if (e.start < interval.end && e.EffectiveEnd() >= interval.start) {
      out.push_back(e);
    }
  }
  return out;
}

void TemperatureSignal::PrepareThrough(SimTime t) {
  ExtendFronts(t);
  ExtendEvents(t);
}

double TemperatureSignal::ValueAt(SimTime t) {
  ExtendEvents(t);
  double value = BaseAt(t);
  for (const TransientEvent& e : events_) {
    if (e.start > t) {
      break;  // events_ is start-ordered
    }
    value += e.Contribution(t);
  }
  return value;
}

TemperatureField::TemperatureField(int num_nodes, const TemperatureParams& params,
                                   double correlation)
    : params_(params),
      correlation_(correlation),
      noise_seed_(params.seed ^ 0x4e4f495345ULL) {
  PRESTO_CHECK(num_nodes >= 1);
  PRESTO_CHECK(correlation >= 0.0 && correlation <= 1.0);

  // The shared field carries no events of its own; events are per-node.
  TemperatureParams shared = params;
  shared.events_per_day = 0.0;
  shared.noise_std_c = 0.0;
  shared_ = std::make_unique<TemperatureSignal>(shared);

  Pcg32 rng(params.seed, /*stream=*/0x4649454c44);
  nodes_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    NodeState node;
    node.offset = rng.Gaussian(0.0, 1.2);  // room-to-room bias

    TemperatureParams indep = params;
    indep.seed = params.seed ^ (0x1000 + static_cast<uint64_t>(i));
    indep.mean_c = 0.0;
    indep.diurnal_amplitude_c = 0.0;
    indep.seasonal_amplitude_c = 0.0;
    indep.events_per_day = 0.0;
    node.independent = std::make_unique<TemperatureSignal>(indep);

    TemperatureParams ev = params;
    ev.seed = params.seed ^ (0x2000 + static_cast<uint64_t>(i));
    ev.mean_c = 0.0;
    ev.diurnal_amplitude_c = 0.0;
    ev.seasonal_amplitude_c = 0.0;
    ev.front_std_c = 0.0;
    node.own_events = std::make_unique<TemperatureSignal>(ev);

    nodes_.push_back(std::move(node));
  }
}

double TemperatureField::TruthAt(int node, SimTime t) {
  PRESTO_CHECK(node >= 0 && node < num_nodes());
  NodeState& n = nodes_[static_cast<size_t>(node)];
  const double shared = shared_->ValueAt(t);
  const double indep = n.independent->ValueAt(t);
  const double events = n.own_events->ValueAt(t);
  return shared + n.offset + std::sqrt(1.0 - correlation_ * correlation_) * indep +
         events;
}

double TemperatureField::MeasureAt(int node, SimTime t) {
  const double noise =
      params_.noise_std_c *
      HashGaussian(noise_seed_ ^ static_cast<uint64_t>(node), t);
  return TruthAt(node, t) + noise;
}

void TemperatureField::PrepareThrough(SimTime t) { shared_->PrepareThrough(t); }

std::vector<TransientEvent> TemperatureField::EventsIn(int node, TimeInterval interval) {
  PRESTO_CHECK(node >= 0 && node < num_nodes());
  return nodes_[static_cast<size_t>(node)].own_events->EventsIn(interval);
}

}  // namespace presto
