#include "src/workload/events.h"

#include <algorithm>

#include "src/util/assert.h"

namespace presto {

SurveillanceWorkload::SurveillanceWorkload(const SurveillanceParams& params)
    : params_(params), rng_(params.seed, /*stream=*/0x535256) {
  PRESTO_CHECK(params_.num_sensors >= 1);
}

void SurveillanceWorkload::Extend(SimTime t) {
  if (params_.events_per_day <= 0.0) {
    horizon_ = std::max(horizon_, t + kDay);
    return;
  }
  const double rate_per_us = params_.events_per_day / static_cast<double>(kDay);
  while (horizon_ <= t) {
    horizon_ += static_cast<Duration>(rng_.Exponential(rate_per_us));
    IntrusionEvent e;
    e.id = next_id_++;
    e.start = horizon_;
    e.duration = params_.min_duration +
                 static_cast<Duration>(rng_.NextDouble() *
                                       static_cast<double>(params_.max_duration -
                                                           params_.min_duration));
    e.entry_sensor = static_cast<int>(rng_.UniformInt(0, params_.num_sensors - 1));
    // The intruder walks to adjacent sensors.
    int pos = e.entry_sensor;
    e.path.push_back(pos);
    const int moves = static_cast<int>(rng_.UniformInt(1, 4));
    for (int m = 0; m < moves; ++m) {
      pos = std::clamp(pos + (rng_.Bernoulli(0.5) ? 1 : -1), 0, params_.num_sensors - 1);
      e.path.push_back(pos);
    }
    events_.push_back(e);
  }
}

std::vector<IntrusionEvent> SurveillanceWorkload::EventsIn(TimeInterval interval) {
  Extend(interval.end);
  std::vector<IntrusionEvent> out;
  for (const IntrusionEvent& e : events_) {
    if (e.start < interval.end && e.start + e.duration >= interval.start) {
      out.push_back(e);
    }
  }
  return out;
}

double SurveillanceWorkload::ReadingAt(int sensor, SimTime t) {
  PRESTO_CHECK(sensor >= 0 && sensor < params_.num_sensors);
  Extend(t);
  double reading =
      params_.background_level *
      (0.7 + 0.3 * HashUniform(params_.seed ^ static_cast<uint64_t>(sensor),
                               t / kMinute));
  for (const IntrusionEvent& e : events_) {
    if (e.start > t) {
      break;
    }
    if (t < e.start || t >= e.start + e.duration) {
      continue;
    }
    // Which leg of the path is the intruder on?
    const Duration leg = e.duration / static_cast<Duration>(e.path.size());
    const size_t idx =
        std::min(static_cast<size_t>((t - e.start) / std::max<Duration>(leg, 1)),
                 e.path.size() - 1);
    if (e.path[idx] == sensor) {
      reading = params_.detection_level;
    }
  }
  return reading;
}

}  // namespace presto
