// Query workload generator: Poisson arrivals of NOW and PAST queries with configurable
// precision/latency requirements. The proxy's query-sensor matching (§3) adapts sensor
// settings to exactly these distributions, so benches sweep them.

#ifndef SRC_WORKLOAD_QUERIES_H_
#define SRC_WORKLOAD_QUERIES_H_

#include <vector>

#include "src/util/rng.h"
#include "src/util/sample.h"
#include "src/util/sim_time.h"

namespace presto {

// A user query request, before being bound to the core query types (workload stays
// below core in the layering).
struct QueryRequest {
  SimTime issue_at = 0;
  int sensor = 0;              // target sensor index within the deployment
  bool past = false;           // false: NOW query; true: PAST (archival) query
  Duration age = 0;            // for PAST: how far back the window starts
  Duration window = Minutes(10);  // for PAST: length of the requested range
  double tolerance = 0.5;      // acceptable absolute error in value units
  Duration latency_bound = Seconds(30);
};

struct QueryWorkloadParams {
  double queries_per_hour = 30.0;
  double past_fraction = 0.3;
  Duration mean_past_age = Hours(12);  // exponential
  Duration max_past_age = Days(7);
  Duration past_window = Minutes(30);
  double min_tolerance = 0.2;
  double max_tolerance = 2.0;
  Duration min_latency = Seconds(5);
  Duration max_latency = Minutes(5);
  int num_sensors = 1;
  uint64_t seed = 23;
};

// Draws one query's fields (target, NOW/PAST shape, tolerance, latency bound) for a
// query issued at `t`. Shared by the batch generator below and the in-sim
// QueryDriver so both produce the same distributions from the same draws.
QueryRequest DrawQueryRequest(Pcg32& rng, const QueryWorkloadParams& params, SimTime t);

// The concrete time range a PAST request asks for when issued at `now`: [age ago,
// age ago + window], clamped inside the lived past. One definition, so every
// binding of the workload (deployment-local, federated) asks for identical ranges.
TimeInterval PastRangeOf(const QueryRequest& request, SimTime now);

// All queries issued during `interval`, in time order.
std::vector<QueryRequest> GenerateQueries(const QueryWorkloadParams& params,
                                          TimeInterval interval);

}  // namespace presto

#endif  // SRC_WORKLOAD_QUERIES_H_
