// Surveillance workload (paper §1/§6): rare intruder events detected by motion/camera
// sensors. These are the canonical "inherently unpredictable" occurrences: no model
// forecasts them, so the model-driven push path must report them the moment the model
// fails — and the archival store must retain the evidence for post-facto forensics.

#ifndef SRC_WORKLOAD_EVENTS_H_
#define SRC_WORKLOAD_EVENTS_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/sample.h"
#include "src/workload/signal.h"

namespace presto {

struct IntrusionEvent {
  uint64_t id = 0;
  SimTime start = 0;
  Duration duration = 0;
  int entry_sensor = 0;      // where the intruder enters
  std::vector<int> path;     // sensors visited, in order
};

struct SurveillanceParams {
  int num_sensors = 8;
  double events_per_day = 0.3;
  Duration min_duration = Minutes(2);
  Duration max_duration = Minutes(15);
  double background_level = 0.3;   // ambient motion-sensor reading
  double detection_level = 8.0;    // reading while the intruder is near a sensor
  uint64_t seed = 17;
};

class SurveillanceWorkload {
 public:
  explicit SurveillanceWorkload(const SurveillanceParams& params);

  // Intrusions starting in the interval (generated lazily, deterministic).
  std::vector<IntrusionEvent> EventsIn(TimeInterval interval);

  // Motion reading of `sensor` at `t` (background unless an intruder is near it).
  double ReadingAt(int sensor, SimTime t);

 private:
  void Extend(SimTime t);

  SurveillanceParams params_;
  Pcg32 rng_;
  std::vector<IntrusionEvent> events_;
  SimTime horizon_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace presto

#endif  // SRC_WORKLOAD_EVENTS_H_
