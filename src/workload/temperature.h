// Synthetic indoor-temperature field, the stand-in for the Intel Lab trace the paper's
// Figure 2 uses (the trace is not redistributable; see DESIGN.md substitutions).
//
// Structure mirrors the statistics that matter to PRESTO:
//   value(t) = mean + diurnal sinusoid + slow seasonal drift
//            + weather fronts (OU/AR(1) process on an hourly grid, hours of memory)
//            + rare transient events (HVAC faults / open windows: sharp ramp, slow decay)
//            + white measurement noise.
// The diurnal + seasonal parts are what model-driven push learns; fronts make the
// prediction problem honest; events are the "inherently unpredictable" occurrences the
// push protocol must never miss; noise is what wavelet denoising removes.
//
// TemperatureField extends this to N spatially correlated nodes: a shared field plus
// per-node offset and an independent per-node component, giving the correlation that
// spatial extrapolation (ablation A9) exploits.

#ifndef SRC_WORKLOAD_TEMPERATURE_H_
#define SRC_WORKLOAD_TEMPERATURE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/util/rng.h"
#include "src/util/sample.h"
#include "src/workload/signal.h"

namespace presto {

struct TemperatureParams {
  double mean_c = 21.0;
  double diurnal_amplitude_c = 4.0;
  Duration diurnal_peak = Hours(15);       // warmest time of day
  double seasonal_amplitude_c = 5.0;
  Duration seasonal_period = Days(365);
  double front_std_c = 1.6;                // weather-front component sigma
  Duration front_timescale = Hours(9);     // OU mean-reversion time constant
  double noise_std_c = 0.12;               // per-sample measurement noise
  double events_per_day = 0.25;            // rare transient anomalies
  double event_magnitude_c = 6.0;          // peak excursion (sign randomized)
  Duration event_rise = Minutes(5);
  Duration event_decay = Minutes(45);
  uint64_t seed = 1;
};

// One transient anomaly: ramps up over `rise`, decays exponentially after the peak.
struct TransientEvent {
  SimTime start = 0;
  double magnitude = 0.0;
  Duration rise = 0;
  Duration decay = 0;

  double Contribution(SimTime t) const;
  // Practically over after several decay constants.
  SimTime EffectiveEnd() const { return start + rise + 8 * decay; }
};

class TemperatureSignal : public Signal {
 public:
  explicit TemperatureSignal(const TemperatureParams& params);

  double ValueAt(SimTime t) override;

  // Extends the lazily built front grid and event list through `t`, so that later
  // ValueAt(t' <= t) calls are pure reads. The parallel deployment engine calls this
  // at epoch barriers for signals shared across lanes.
  void PrepareThrough(SimTime t);

  // The noiseless, eventless component (for decomposition-aware tests).
  double BaseAt(SimTime t);

  // Events whose effect overlaps [interval.start, interval.end).
  std::vector<TransientEvent> EventsIn(TimeInterval interval);

 private:
  double FrontAt(SimTime t);
  void ExtendFronts(SimTime t);
  void ExtendEvents(SimTime t);

  TemperatureParams params_;
  Pcg32 front_rng_;
  Pcg32 event_rng_;
  std::vector<double> fronts_;  // OU samples on the hourly grid, extended lazily
  std::vector<TransientEvent> events_;
  SimTime events_horizon_ = 0;
};

class TemperatureField {
 public:
  // `correlation` in [0,1]: 1 -> all nodes see the shared field exactly (plus offset),
  // 0 -> fully independent nodes.
  TemperatureField(int num_nodes, const TemperatureParams& params, double correlation);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // Ground truth for node `i` at `t` (including that node's transient events),
  // before measurement noise.
  double TruthAt(int node, SimTime t);

  // TruthAt plus white measurement noise — what the node's ADC reads.
  double MeasureAt(int node, SimTime t);

  // Pre-extends the *shared* field component through `t`. Per-node components are
  // only read by their own node's lane, but the shared signal is read by every lane:
  // the deployment pre-extends it at each epoch barrier so MeasureAt never mutates
  // cross-lane state. (Noise is a stateless hash; no preparation needed.)
  void PrepareThrough(SimTime t);

  // Per-node events (for rare-event detection scoring).
  std::vector<TransientEvent> EventsIn(int node, TimeInterval interval);

 private:
  struct NodeState {
    double offset = 0.0;
    std::unique_ptr<TemperatureSignal> independent;  // de-correlated component source
    std::unique_ptr<TemperatureSignal> own_events;   // carries this node's anomalies
  };

  TemperatureParams params_;
  double correlation_;
  std::unique_ptr<TemperatureSignal> shared_;
  std::vector<NodeState> nodes_;
  uint64_t noise_seed_;
};

}  // namespace presto

#endif  // SRC_WORKLOAD_TEMPERATURE_H_
