// Ground-truth physical signals driving the simulated sensors.
//
// Signals are *deterministic functions of (seed, t)* — two calls with the same
// arguments always agree — so a bench can replay the exact world while varying only
// the system under test, and the proxy-side error metrics can compare against truth.

#ifndef SRC_WORKLOAD_SIGNAL_H_
#define SRC_WORKLOAD_SIGNAL_H_

#include <cstdint>

#include "src/util/sim_time.h"

namespace presto {

class Signal {
 public:
  virtual ~Signal() = default;

  // Ground-truth value at time t. Implementations may extend lazily computed internal
  // state (hence non-const) but must stay deterministic and support arbitrary t >= 0.
  virtual double ValueAt(SimTime t) = 0;
};

// Deterministic white noise: a hash of (seed, bucket) -> N(0, 1), random-access in t.
// Used for per-sample measurement noise without requiring sequential generation.
double HashGaussian(uint64_t seed, int64_t bucket);

// Uniform [0,1) variant of the same construction.
double HashUniform(uint64_t seed, int64_t bucket);

}  // namespace presto

#endif  // SRC_WORKLOAD_SIGNAL_H_
