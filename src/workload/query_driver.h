// Open-loop query driver that lives *inside* the simulation.
//
// QueryAndWait's host loop steps the simulator once per query — fine for probes,
// hopeless for a high-QPS interactive workload on the lane engine, where every
// round-trip advances whole epochs. The driver instead schedules its arrival
// process as typed control-lane events: each fire draws one QueryRequest (the same
// distributions as GenerateQueries), hands it to an injected IssueFn, and schedules
// the next arrival — open-loop, so arrivals never wait on completions. One
// `RunUntil(end)` then carries the entire workload with zero host round-trips.
//
// Layering: the driver knows simulators and QueryRequests, not proxies or stores.
// The binding to a concrete query path is the IssueFn — Deployment::AttachQueryDriver
// issues into its unified store, Federation::AttachQueryDriver into the cross-cell
// router. The glue must invoke the completion callback from control context (both
// bindings marshal completions onto the control lane), so recording is serial and
// needs no locks.
//
// Determinism: arrivals draw from a seeded Pcg32 stream and execute as simulator
// events, so issue times, targets, and the recorded outcomes are part of the replay
// fingerprint; outcome timestamps are event times, making the latency histogram
// bit-identical across worker counts.

#ifndef SRC_WORKLOAD_QUERY_DRIVER_H_
#define SRC_WORKLOAD_QUERY_DRIVER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/workload/queries.h"

namespace presto {

enum class ArrivalProcess : uint8_t {
  kPoisson = 0,    // exponential interarrivals at mix.queries_per_hour
  kFixedRate = 1,  // constant interarrival of 1 / mix.queries_per_hour
};

struct QueryDriverParams {
  // Arrival rate (queries_per_hour), NOW/PAST mix, tolerance and latency-bound
  // distributions, target namespace size (num_sensors), and the driver's seed.
  QueryWorkloadParams mix;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
};

// What the glue reports back when a query finishes. Timestamps are simulator event
// times (not wall clock), so latencies replay bit-identically.
struct QueryOutcome {
  SimTime issued_at = 0;
  SimTime completed_at = 0;
  bool ok = false;
  uint8_t source = 0;       // sink-defined answer-source tag (deployment: AnswerSource)
  bool cross_cell = false;  // federation glue: the query left its origin cell
  bool past = false;        // query class: archival PAST (true) vs interactive NOW
  int source_cell = 0;      // federation glue: cell that served the answer
  double energy_j = 0.0;    // sensor radio energy this query cost (pulls only)

  Duration Latency() const { return completed_at - issued_at; }
};

// Power-of-two latency buckets over microseconds: bucket i counts latencies in
// [2^i us, 2^(i+1) us). Integer math only — equal runs produce equal histograms, so
// tests and benches compare them directly (the query-path half of the determinism
// contract, alongside the simulator fingerprint).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;  // 2^39 us ~ 6.4 days: plenty

  void Record(Duration latency);
  void Merge(const LatencyHistogram& other);

  uint64_t TotalCount() const;
  uint64_t BucketCount(int i) const { return counts_[static_cast<size_t>(i)]; }

  // FNV digest over the bucket vector — the self-check benches print and compare.
  // Memoized: mutations (Record / Merge / LoadState) invalidate, so hot compare
  // loops pay the 40-bucket fold once per mutation, not once per call. Merge sums
  // commuting bucket counts, so hash(merge(a, b)) == hash(merge(b, a)).
  uint64_t Hash() const;

  // "[1ms,2ms):12" style non-empty buckets, for bench dumps.
  std::string ToString() const;

  // Checkpoint codec: bucket counts only (the memo rebuilds on demand).
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

  friend bool operator==(const LatencyHistogram& a, const LatencyHistogram& b) {
    return a.counts_ == b.counts_;
  }
  friend bool operator!=(const LatencyHistogram& a, const LatencyHistogram& b) {
    return !(a == b);
  }

 private:
  std::array<uint64_t, kBuckets> counts_{};
  mutable uint64_t cached_hash_ = 0;
  mutable bool hash_valid_ = false;
};

struct QueryDriverStats {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cross_cell = 0;
  std::array<uint64_t, 4> by_source{};  // indexed by QueryOutcome::source & 3
  SampleSet latency_ms;                 // completed queries (mean / quantiles)
  LatencyHistogram latency;             // completed queries (determinism digest)
  // Per-query energy attribution (satellite of the paper's energy-vs-latency
  // tradeoff): total sensor radio joules charged to this driver's queries, split by
  // query class and by the cell whose sensors paid. Recording is serial (control
  // lane), so the double sums accumulate in a deterministic order.
  double energy_j = 0.0;
  double energy_now_j = 0.0;
  double energy_past_j = 0.0;
  uint64_t energized = 0;                    // completions that cost sensor energy
  std::map<int, double> energy_by_cell_j;    // keyed by QueryOutcome::source_cell
};

// Stats codec: checkpoints embed it via QueryDriver::SaveState, and the federation
// process seam marshals per-worker driver stats through it (kSnapshot frames) —
// one field order for both, so the two paths cannot drift.
void CkptWrite(ByteWriter& w, const QueryDriverStats& v);
Status CkptRead(ByteReader& r, QueryDriverStats& v);

class QueryDriver : public EventSink {
 public:
  using CompletionFn = std::function<void(const QueryOutcome&)>;
  // Issues one request into the system under test. `done` must be invoked from
  // control context exactly once when the query completes (or fails).
  using IssueFn = std::function<void(const QueryRequest& request, CompletionFn done)>;

  // `sim` must outlive the driver. The driver must outlive every in-flight query
  // (its owner destroys it before the simulator).
  QueryDriver(Simulator* sim, const QueryDriverParams& params, IssueFn issue_fn);
  ~QueryDriver() override { Stop(); }

  QueryDriver(const QueryDriver&) = delete;
  QueryDriver& operator=(const QueryDriver&) = delete;

  // Begins the arrival process (first arrival one draw from now). `duration` > 0
  // stops issuing at Now() + duration; 0 keeps issuing until Stop(). Control
  // context only.
  void Start(Duration duration = 0);

  // Cancels the pending arrival; in-flight queries still complete. Idempotent.
  void Stop();

  const QueryDriverParams& params() const { return params_; }
  const QueryDriverStats& stats() const { return stats_; }

  // Records a completed outcome directly — the token-form completion path, used by
  // glue that tags in-flight queries with a driver index instead of capturing the
  // CompletionFn closure (closures cannot survive a checkpoint). Control context
  // only, like CompletionFn.
  void RecordOutcome(const QueryOutcome& outcome) { Record(outcome); }

  void OnSimEvent(EventKind kind, EventPayload& payload) override;  // arrivals
  void OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                       const EventHandle& handle, int lane) override;

  // Checkpoint codec: arrival RNG and schedule, run window, and recorded stats.
  // The pending-arrival event itself lives in the simulator's queue; LoadState
  // drops the stale handle and OnEventRestored re-captures it.
  Status SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  Duration NextGap();
  void Record(const QueryOutcome& outcome);

  Simulator* sim_;
  QueryDriverParams params_;
  IssueFn issue_fn_;
  Pcg32 rng_;
  EventHandle pending_;
  // The arrival process chains off intended arrival times, not observed Now().
  // Control events observe their scheduled time, but execution is still
  // barrier-batched: chaining off the observed clock would couple the arrival
  // schedule to execution order instead of the Poisson draw. Arrivals that fall
  // behind a barrier execute there in-batch while keeping their intended stamps.
  SimTime next_at_ = 0;
  SimTime until_ = -1;  // no arrivals at/after this time; -1 = unbounded
  bool running_ = false;
  QueryDriverStats stats_;
};

}  // namespace presto

#endif  // SRC_WORKLOAD_QUERY_DRIVER_H_
