#include "src/workload/signal.h"

#include <cmath>

namespace presto {
namespace {

// SplitMix64: excellent avalanche, cheap, and stateless.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

double HashUniform(uint64_t seed, int64_t bucket) {
  const uint64_t h = Mix(seed ^ Mix(static_cast<uint64_t>(bucket)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double HashGaussian(uint64_t seed, int64_t bucket) {
  // Box-Muller from two decorrelated uniforms of the same (seed, bucket).
  const double u1 = 1.0 - HashUniform(seed ^ 0xA5A5A5A5A5A5A5A5ULL, bucket);
  const double u2 = HashUniform(seed ^ 0x5A5A5A5A5A5A5A5AULL, bucket);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace presto
