// Vehicle-traffic workload (paper §1/§6: commuter-traffic querying). An inhomogeneous
// Poisson arrival process with rush-hour peaks; each vehicle passes a line of detector
// sensors in road order, producing the multi-proxy detection streams whose *order*
// the skip-graph/temporal-merge layers must preserve, and a per-interval count series
// that is highly predictable (what PRESTO's models exploit).

#ifndef SRC_WORKLOAD_TRAFFIC_H_
#define SRC_WORKLOAD_TRAFFIC_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/sample.h"

namespace presto {

enum class VehicleClass : uint8_t { kCar = 0, kTruck = 1, kBus = 2 };

struct Vehicle {
  uint64_t id = 0;
  SimTime entry_time = 0;     // when it passes detector 0
  double speed_m_s = 0.0;
  VehicleClass klass = VehicleClass::kCar;
};

struct VehicleDetection {
  uint64_t vehicle_id = 0;
  int detector = 0;
  SimTime t = 0;  // true detection time (sensor clocks distort this downstream)
  VehicleClass klass = VehicleClass::kCar;
};

struct TrafficParams {
  double base_rate_per_hour = 60.0;
  double rush_peak_per_hour = 540.0;     // added on top of base at peak
  Duration morning_peak = Hours(8);
  Duration evening_peak = Hours(17.5);
  Duration peak_width = Hours(1.2);      // Gaussian sigma of each rush hour
  double truck_fraction = 0.12;
  double bus_fraction = 0.04;
  double mean_speed_m_s = 13.0;
  double speed_std_m_s = 2.5;
  uint64_t seed = 7;
};

class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficParams& params);

  // Arrival intensity (vehicles/hour) at time-of-day of `t`.
  double RatePerHour(SimTime t) const;

  // All vehicles entering during [interval.start, interval.end), by thinning.
  std::vector<Vehicle> GenerateVehicles(TimeInterval interval);

  // Detections of `vehicles` at detectors placed every `spacing_m` along the road,
  // ordered by time within each detector stream.
  std::vector<std::vector<VehicleDetection>> DetectionsAt(
      const std::vector<Vehicle>& vehicles, int num_detectors, double spacing_m) const;

  // Vehicle counts per `bin` interval at detector 0 — the numeric series PRESTO models.
  std::vector<Sample> CountSeries(const std::vector<Vehicle>& vehicles,
                                  TimeInterval interval, Duration bin) const;

 private:
  TrafficParams params_;
  Pcg32 rng_;
  uint64_t next_id_ = 1;
};

}  // namespace presto

#endif  // SRC_WORKLOAD_TRAFFIC_H_
