#include "src/workload/activity.h"

#include <algorithm>

#include "src/util/assert.h"

namespace presto {
namespace {

// A typical day template: (start hour, state). Durations jittered per day.
struct TemplateEntry {
  double hour;
  ActivityState state;
};
constexpr TemplateEntry kDayTemplate[] = {
    {0.0, ActivityState::kSleep}, {7.0, ActivityState::kWake},
    {7.5, ActivityState::kMeal},  {8.2, ActivityState::kWalk},
    {9.0, ActivityState::kSit},   {12.0, ActivityState::kMeal},
    {12.8, ActivityState::kSit},  {15.0, ActivityState::kOut},
    {16.5, ActivityState::kSit},  {18.0, ActivityState::kMeal},
    {18.8, ActivityState::kSit},  {21.0, ActivityState::kExercise},
    {21.5, ActivityState::kSit},  {22.5, ActivityState::kSleep},
};

}  // namespace

const char* ActivityStateName(ActivityState s) {
  switch (s) {
    case ActivityState::kSleep:
      return "sleep";
    case ActivityState::kWake:
      return "wake";
    case ActivityState::kMeal:
      return "meal";
    case ActivityState::kSit:
      return "sit";
    case ActivityState::kWalk:
      return "walk";
    case ActivityState::kOut:
      return "out";
    case ActivityState::kExercise:
      return "exercise";
  }
  return "?";
}

double ActivityLevel(ActivityState s) {
  switch (s) {
    case ActivityState::kSleep:
      return 0.2;
    case ActivityState::kWake:
      return 2.5;
    case ActivityState::kMeal:
      return 3.5;
    case ActivityState::kSit:
      return 1.0;
    case ActivityState::kWalk:
      return 5.0;
    case ActivityState::kOut:
      return 6.0;
    case ActivityState::kExercise:
      return 7.0;
  }
  return 0.0;
}

ActivitySignal::ActivitySignal(const ActivityParams& params)
    : params_(params),
      rng_(params.seed, /*stream=*/0x414354),
      anomaly_rng_(params.seed, /*stream=*/0x414e4f) {}

void ActivitySignal::ExtendSchedule(SimTime t) {
  while (schedule_horizon_ <= t) {
    const SimTime day_start = schedule_horizon_;
    for (const TemplateEntry& e : kDayTemplate) {
      const double jitter =
          rng_.Gaussian(0.0, params_.schedule_jitter) * static_cast<double>(kHour);
      SimTime start = day_start + Hours(e.hour) + static_cast<Duration>(jitter);
      start = std::max(start, day_start);
      if (!schedule_.empty()) {
        start = std::max(start, schedule_.back().start);
      }
      schedule_.push_back(Segment{start, e.state});
    }
    schedule_horizon_ = day_start + kDay;
  }
}

ActivityState ActivitySignal::StateAt(SimTime t) {
  ExtendSchedule(t);
  // Last segment with start <= t.
  auto it = std::upper_bound(
      schedule_.begin(), schedule_.end(), t,
      [](SimTime value, const Segment& s) { return value < s.start; });
  if (it == schedule_.begin()) {
    return ActivityState::kSleep;
  }
  return std::prev(it)->state;
}

void ActivitySignal::ExtendAnomalies(SimTime t) {
  if (params_.anomalies_per_week <= 0.0) {
    anomaly_horizon_ = std::max(anomaly_horizon_, t + kDay);
    return;
  }
  const double rate_per_us = params_.anomalies_per_week / static_cast<double>(7 * kDay);
  while (anomaly_horizon_ <= t) {
    anomaly_horizon_ += static_cast<Duration>(anomaly_rng_.Exponential(rate_per_us));
    ActivityAnomaly a;
    a.start = anomaly_horizon_;
    if (anomaly_rng_.Bernoulli(0.5)) {
      a.kind = ActivityAnomaly::Kind::kFall;
      a.duration = Minutes(20 + 40 * anomaly_rng_.NextDouble());
    } else {
      // A missed meal only means something at a meal time: snap to the start of the
      // next scheduled meal segment.
      a.kind = ActivityAnomaly::Kind::kMissedMeal;
      ExtendSchedule(a.start + 2 * kDay);
      for (const Segment& seg : schedule_) {
        if (seg.start >= a.start && seg.state == ActivityState::kMeal) {
          a.start = seg.start;
          break;
        }
      }
      a.duration = Hours(1.0);
    }
    anomalies_.push_back(a);
    anomaly_horizon_ = std::max(anomaly_horizon_, a.start);
  }
}

std::vector<ActivityAnomaly> ActivitySignal::AnomaliesIn(TimeInterval interval) {
  ExtendAnomalies(interval.end);
  std::vector<ActivityAnomaly> out;
  for (const ActivityAnomaly& a : anomalies_) {
    if (a.start < interval.end && a.start + a.duration >= interval.start) {
      out.push_back(a);
    }
  }
  return out;
}

double ActivitySignal::ValueAt(SimTime t) {
  ExtendAnomalies(t);
  double level = ActivityLevel(StateAt(t));
  for (const ActivityAnomaly& a : anomalies_) {
    if (a.start > t) {
      break;
    }
    if (t >= a.start && t < a.start + a.duration) {
      if (a.kind == ActivityAnomaly::Kind::kFall) {
        // Impact spike plus the struggle to get up spans the better part of a minute
        // (so even 30 s sampling sees it), then abnormal stillness.
        level = (t - a.start) < Seconds(45) ? 9.0 : 0.05;
      } else {
        level = 0.5;  // missed meal: near-stillness where a meal peak should be
      }
    }
  }
  // Small deterministic wobble so the signal is not piecewise constant.
  return level + 0.15 * HashGaussian(params_.seed, t / kMinute);
}

}  // namespace presto
