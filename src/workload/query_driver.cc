#include "src/workload/query_driver.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/util/assert.h"
#include "src/util/ckpt.h"
#include "src/util/hash.h"

namespace presto {

void LatencyHistogram::Record(Duration latency) {
  uint64_t us = latency > 0 ? static_cast<uint64_t>(latency) : 0;
  int bucket = 0;
  while (us > 1 && bucket < kBuckets - 1) {
    us >>= 1;
    ++bucket;
  }
  ++counts_[static_cast<size_t>(bucket)];
  hash_valid_ = false;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    counts_[static_cast<size_t>(i)] += other.counts_[static_cast<size_t>(i)];
  }
  hash_valid_ = false;
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : counts_) {
    total += c;
  }
  return total;
}

uint64_t LatencyHistogram::Hash() const {
  if (!hash_valid_) {
    uint64_t fp = kFnvOffsetBasis;
    for (uint64_t c : counts_) {
      FnvMix(fp, c);
    }
    cached_hash_ = fp;
    hash_valid_ = true;
  }
  return cached_hash_;
}

void LatencyHistogram::SaveState(ByteWriter& w) const { CkptWrite(w, counts_); }

Status LatencyHistogram::LoadState(ByteReader& r) {
  CKPT_READ(r, counts_);
  hash_valid_ = false;
  return OkStatus();
}

std::string LatencyHistogram::ToString() const {
  std::string out;
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t c = counts_[static_cast<size_t>(i)];
    if (c == 0) {
      continue;
    }
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%s[%s,%s):%llu", out.empty() ? "" : " ",
                  FormatDuration(Duration(1) << i).c_str(),
                  FormatDuration(Duration(1) << (i + 1)).c_str(),
                  static_cast<unsigned long long>(c));
    out += buf;
  }
  return out.empty() ? "(empty)" : out;
}

QueryDriver::QueryDriver(Simulator* sim, const QueryDriverParams& params,
                         IssueFn issue_fn)
    : sim_(sim),
      params_(params),
      issue_fn_(std::move(issue_fn)),
      rng_(params.mix.seed, /*stream=*/0x44525652) {
  PRESTO_CHECK(sim_ != nullptr);
  PRESTO_CHECK(issue_fn_ != nullptr);
  PRESTO_CHECK(params_.mix.num_sensors >= 1);
  PRESTO_CHECK(params_.mix.queries_per_hour > 0.0);
  sim_->RegisterSink(this);
}

Duration QueryDriver::NextGap() {
  const double rate_per_us =
      params_.mix.queries_per_hour / static_cast<double>(kHour);
  if (params_.arrivals == ArrivalProcess::kFixedRate) {
    return static_cast<Duration>(1.0 / rate_per_us);
  }
  return static_cast<Duration>(rng_.Exponential(rate_per_us));
}

void QueryDriver::Start(Duration duration) {
  PRESTO_CHECK_MSG(sim_->CurrentLane() == Simulator::kLaneControl,
                   "QueryDriver::Start is control-context only");
  pending_.Cancel();
  running_ = true;
  until_ = duration > 0 ? sim_->Now() + duration : -1;
  next_at_ = sim_->Now() + NextGap();
  if (until_ >= 0 && next_at_ >= until_) {
    return;
  }
  pending_ = sim_->ScheduleEventAt(next_at_, EventKind::kQuery, this, EventPayload{},
                                   Simulator::kLaneControl);
}

void QueryDriver::Stop() {
  pending_.Cancel();
  running_ = false;
}

void QueryDriver::OnSimEvent(EventKind kind, EventPayload& payload) {
  PRESTO_CHECK(kind == EventKind::kQuery);
  (void)payload;
  if (!running_) {
    return;
  }
  QueryRequest request = DrawQueryRequest(rng_, params_.mix, sim_->Now());
  ++stats_.issued;
  issue_fn_(request, [this](const QueryOutcome& outcome) { Record(outcome); });
  // Open loop: the next arrival rides the clock, not this query's completion.
  next_at_ = std::max(next_at_ + NextGap(), sim_->Now());
  if (until_ >= 0 && next_at_ >= until_) {
    running_ = false;
    return;
  }
  pending_ = sim_->ScheduleEventAt(next_at_, EventKind::kQuery, this, EventPayload{},
                                   Simulator::kLaneControl);
}

void QueryDriver::OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                                  const EventHandle& handle, int lane) {
  (void)t;
  (void)payload;
  (void)lane;
  if (kind == EventKind::kQuery) {
    pending_ = handle;  // the one pending arrival re-captured after restore
  }
}

void CkptWrite(ByteWriter& w, const QueryDriverStats& v) {
  CkptWrite(w, v.issued);
  CkptWrite(w, v.completed);
  CkptWrite(w, v.failed);
  CkptWrite(w, v.cross_cell);
  CkptWrite(w, v.by_source);
  CkptWrite(w, v.latency_ms);
  v.latency.SaveState(w);
  CkptWrite(w, v.energy_j);
  CkptWrite(w, v.energy_now_j);
  CkptWrite(w, v.energy_past_j);
  CkptWrite(w, v.energized);
  CkptWrite(w, v.energy_by_cell_j);
}

Status CkptRead(ByteReader& r, QueryDriverStats& v) {
  CKPT_READ(r, v.issued);
  CKPT_READ(r, v.completed);
  CKPT_READ(r, v.failed);
  CKPT_READ(r, v.cross_cell);
  CKPT_READ(r, v.by_source);
  CKPT_READ(r, v.latency_ms);
  PRESTO_RETURN_IF_ERROR(v.latency.LoadState(r));
  CKPT_READ(r, v.energy_j);
  CKPT_READ(r, v.energy_now_j);
  CKPT_READ(r, v.energy_past_j);
  CKPT_READ(r, v.energized);
  CKPT_READ(r, v.energy_by_cell_j);
  return OkStatus();
}

Status QueryDriver::SaveState(ByteWriter& w) const {
  CkptWrite(w, rng_);
  CkptWrite(w, next_at_);
  CkptWrite(w, until_);
  CkptWrite(w, running_);
  CkptWrite(w, stats_);
  return OkStatus();
}

Status QueryDriver::LoadState(ByteReader& r) {
  pending_ = EventHandle();  // re-captured via OnEventRestored
  CKPT_READ(r, rng_);
  CKPT_READ(r, next_at_);
  CKPT_READ(r, until_);
  CKPT_READ(r, running_);
  CKPT_READ(r, stats_);
  return OkStatus();
}

void QueryDriver::Record(const QueryOutcome& outcome) {
  ++stats_.completed;
  if (!outcome.ok) {
    ++stats_.failed;
  }
  ++stats_.by_source[outcome.source & 3];
  if (outcome.cross_cell) {
    ++stats_.cross_cell;
  }
  stats_.latency_ms.Add(ToMillis(outcome.Latency()));
  stats_.latency.Record(outcome.Latency());
  if (outcome.energy_j > 0.0) {
    ++stats_.energized;
    stats_.energy_j += outcome.energy_j;
    (outcome.past ? stats_.energy_past_j : stats_.energy_now_j) += outcome.energy_j;
    stats_.energy_by_cell_j[outcome.source_cell] += outcome.energy_j;
  }
}

}  // namespace presto
