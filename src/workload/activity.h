// Daily-activity (ADL) workload for the elder-care scenario the paper motivates in §6:
// "daily activity patterns tend to be mostly predictable, with occasional unpredictable
// events." A semi-Markov day schedule emits an activity-intensity level; anomalies
// (falls, missed meals) are the events PRESTO must push despite no model predicting
// them.

#ifndef SRC_WORKLOAD_ACTIVITY_H_
#define SRC_WORKLOAD_ACTIVITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/sample.h"
#include "src/workload/signal.h"

namespace presto {

enum class ActivityState : uint8_t {
  kSleep = 0,
  kWake = 1,
  kMeal = 2,
  kSit = 3,
  kWalk = 4,
  kOut = 5,
  kExercise = 6,
};

const char* ActivityStateName(ActivityState s);

// Motion-sensor intensity associated with each state (the scalar PRESTO stores).
double ActivityLevel(ActivityState s);

struct ActivityAnomaly {
  enum class Kind : uint8_t { kFall = 0, kMissedMeal = 1 };
  Kind kind = Kind::kFall;
  SimTime start = 0;
  Duration duration = 0;
};

struct ActivityParams {
  double schedule_jitter = 0.2;   // relative randomization of segment boundaries
  double anomalies_per_week = 1.0;
  uint64_t seed = 11;
};

class ActivitySignal : public Signal {
 public:
  explicit ActivitySignal(const ActivityParams& params);

  // Motion intensity at `t` (anomalies included: a fall = spike then stillness).
  double ValueAt(SimTime t) override;

  ActivityState StateAt(SimTime t);
  std::vector<ActivityAnomaly> AnomaliesIn(TimeInterval interval);

 private:
  struct Segment {
    SimTime start = 0;
    ActivityState state = ActivityState::kSleep;
  };

  void ExtendSchedule(SimTime t);
  void ExtendAnomalies(SimTime t);

  ActivityParams params_;
  Pcg32 rng_;
  Pcg32 anomaly_rng_;
  std::vector<Segment> schedule_;  // start-ordered
  SimTime schedule_horizon_ = 0;
  std::vector<ActivityAnomaly> anomalies_;
  SimTime anomaly_horizon_ = 0;
};

}  // namespace presto

#endif  // SRC_WORKLOAD_ACTIVITY_H_
