#include "src/workload/traffic.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"

namespace presto {

TrafficGenerator::TrafficGenerator(const TrafficParams& params)
    : params_(params), rng_(params.seed, /*stream=*/0x545246) {}

double TrafficGenerator::RatePerHour(SimTime t) const {
  const double tod = static_cast<double>(t % kDay);
  auto bump = [&](Duration peak) {
    const double d =
        (tod - static_cast<double>(peak)) / static_cast<double>(params_.peak_width);
    return std::exp(-0.5 * d * d);
  };
  return params_.base_rate_per_hour +
         params_.rush_peak_per_hour *
             (bump(params_.morning_peak) + bump(params_.evening_peak));
}

std::vector<Vehicle> TrafficGenerator::GenerateVehicles(TimeInterval interval) {
  // Thinning (Lewis & Shedler): dominate with the max rate, accept proportionally.
  const double max_rate =
      params_.base_rate_per_hour + 2.0 * params_.rush_peak_per_hour;
  const double max_rate_per_us = max_rate / static_cast<double>(kHour);
  std::vector<Vehicle> out;
  SimTime t = interval.start;
  while (true) {
    t += static_cast<Duration>(rng_.Exponential(max_rate_per_us));
    if (t >= interval.end) {
      break;
    }
    if (!rng_.Bernoulli(RatePerHour(t) / max_rate)) {
      continue;
    }
    Vehicle v;
    v.id = next_id_++;
    v.entry_time = t;
    v.speed_m_s = std::max(3.0, rng_.Gaussian(params_.mean_speed_m_s,
                                              params_.speed_std_m_s));
    const double klass = rng_.NextDouble();
    if (klass < params_.bus_fraction) {
      v.klass = VehicleClass::kBus;
    } else if (klass < params_.bus_fraction + params_.truck_fraction) {
      v.klass = VehicleClass::kTruck;
    } else {
      v.klass = VehicleClass::kCar;
    }
    out.push_back(v);
  }
  return out;
}

std::vector<std::vector<VehicleDetection>> TrafficGenerator::DetectionsAt(
    const std::vector<Vehicle>& vehicles, int num_detectors, double spacing_m) const {
  PRESTO_CHECK(num_detectors >= 1);
  std::vector<std::vector<VehicleDetection>> streams(static_cast<size_t>(num_detectors));
  for (const Vehicle& v : vehicles) {
    for (int d = 0; d < num_detectors; ++d) {
      const double travel_s = spacing_m * d / v.speed_m_s;
      VehicleDetection det;
      det.vehicle_id = v.id;
      det.detector = d;
      det.t = v.entry_time + Seconds(travel_s);
      det.klass = v.klass;
      streams[static_cast<size_t>(d)].push_back(det);
    }
  }
  for (auto& s : streams) {
    std::sort(s.begin(), s.end(),
              [](const VehicleDetection& a,
                 const VehicleDetection& b) { return a.t < b.t; });
  }
  return streams;
}

std::vector<Sample> TrafficGenerator::CountSeries(
    const std::vector<Vehicle>& vehicles, TimeInterval interval, Duration bin) const {
  PRESTO_CHECK(bin > 0);
  const size_t bins = static_cast<size_t>((interval.Length() + bin - 1) / bin);
  std::vector<Sample> out(bins);
  for (size_t i = 0; i < bins; ++i) {
    out[i] = Sample{interval.start + static_cast<Duration>(i) * bin, 0.0};
  }
  for (const Vehicle& v : vehicles) {
    if (v.entry_time < interval.start || v.entry_time >= interval.end) {
      continue;
    }
    const size_t i = static_cast<size_t>((v.entry_time - interval.start) / bin);
    out[std::min(i, bins - 1)].value += 1.0;
  }
  return out;
}

}  // namespace presto
