#include "src/wavelet/transform.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/util/assert.h"

namespace presto {
namespace {

// Daubechies-4 scaling coefficients.
constexpr std::array<double, 4> kD4H = {
    0.48296291314469025, 0.836516303737469, 0.22414386804185735, -0.12940952255092145};

// One analysis step on x[0..n): writes n/2 approx then n/2 detail into out[0..n).
void AnalyzeStep(const std::vector<double>& x, size_t n, WaveletKind kind,
                 std::vector<double>* out) {
  const size_t half = n / 2;
  if (kind == WaveletKind::kHaar) {
    const double r = 1.0 / std::sqrt(2.0);
    for (size_t i = 0; i < half; ++i) {
      (*out)[i] = (x[2 * i] + x[2 * i + 1]) * r;
      (*out)[half + i] = (x[2 * i] - x[2 * i + 1]) * r;
    }
    return;
  }
  // D4 with periodic extension.
  for (size_t i = 0; i < half; ++i) {
    double a = 0.0;
    double d = 0.0;
    for (size_t k = 0; k < 4; ++k) {
      const double v = x[(2 * i + k) % n];
      a += kD4H[k] * v;
      // Wavelet (high-pass) filter: g[k] = (-1)^k h[3-k].
      d += ((k % 2 == 0) ? 1.0 : -1.0) * kD4H[3 - k] * v;
    }
    (*out)[i] = a;
    (*out)[half + i] = d;
  }
}

// One synthesis step: approx in x[0..half), detail in x[half..n) -> signal out[0..n).
void SynthesizeStep(const std::vector<double>& x, size_t n, WaveletKind kind,
                    std::vector<double>* out) {
  const size_t half = n / 2;
  if (kind == WaveletKind::kHaar) {
    const double r = 1.0 / std::sqrt(2.0);
    for (size_t i = 0; i < half; ++i) {
      (*out)[2 * i] = (x[i] + x[half + i]) * r;
      (*out)[2 * i + 1] = (x[i] - x[half + i]) * r;
    }
    return;
  }
  std::fill(out->begin(), out->begin() + static_cast<ptrdiff_t>(n), 0.0);
  for (size_t i = 0; i < half; ++i) {
    const double a = x[i];
    const double d = x[half + i];
    for (size_t k = 0; k < 4; ++k) {
      const size_t pos = (2 * i + k) % n;
      (*out)[pos] += kD4H[k] * a + ((k % 2 == 0) ? 1.0 : -1.0) * kD4H[3 - k] * d;
    }
  }
}

}  // namespace

size_t NextPowerOfTwo(size_t n) {
  PRESTO_CHECK(n >= 1);
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

std::pair<size_t, size_t> DwtCoeffs::DetailRange(int level) const {
  PRESTO_CHECK(level >= 1 && level <= levels);
  const size_t n = PaddedLength();
  const size_t begin = n >> level;
  const size_t end = n >> (level - 1);
  return {begin, end};
}

std::pair<size_t, size_t> DwtCoeffs::ApproxRange() const {
  return {0, PaddedLength() >> levels};
}

Result<DwtCoeffs> ForwardDwt(const std::vector<double>& signal, WaveletKind kind,
                             int levels) {
  if (signal.empty()) {
    return InvalidArgumentError("dwt: empty signal");
  }
  const size_t padded = NextPowerOfTwo(signal.size());
  int max_levels = 0;
  while ((padded >> (max_levels + 1)) >= 1 && (padded >> max_levels) > 1) {
    ++max_levels;
  }
  if (kind == WaveletKind::kDaubechies4) {
    // D4 needs at least 4 samples per analyzed band.
    while (max_levels > 0 && (padded >> (max_levels - 1)) < 4) {
      --max_levels;
    }
  }
  if (levels <= 0 || levels > max_levels) {
    levels = max_levels;
  }

  DwtCoeffs out;
  out.kind = kind;
  out.levels = levels;
  out.original_length = signal.size();
  out.data = signal;
  out.data.resize(padded, signal.back());  // edge padding

  std::vector<double> scratch(padded);
  size_t n = padded;
  for (int l = 0; l < levels; ++l) {
    AnalyzeStep(out.data, n, kind, &scratch);
    std::copy(scratch.begin(), scratch.begin() + static_cast<ptrdiff_t>(n),
              out.data.begin());
    n /= 2;
  }
  return out;
}

std::vector<double> InverseDwt(const DwtCoeffs& coeffs) {
  PRESTO_CHECK(coeffs.levels >= 0);
  std::vector<double> data = coeffs.data;
  const size_t padded = data.size();
  std::vector<double> scratch(padded);
  size_t n = padded >> (coeffs.levels - 1);
  if (coeffs.levels == 0) {
    n = 0;
  }
  for (int l = coeffs.levels; l >= 1; --l) {
    n = padded >> (l - 1);
    SynthesizeStep(data, n, coeffs.kind, &scratch);
    std::copy(scratch.begin(), scratch.begin() + static_cast<ptrdiff_t>(n), data.begin());
  }
  data.resize(coeffs.original_length);
  return data;
}

int64_t DwtCostOps(size_t length, WaveletKind kind) {
  const size_t padded = NextPowerOfTwo(std::max<size_t>(length, 1));
  const int64_t per_sample = kind == WaveletKind::kHaar ? 2 : 8;
  // Geometric sum over levels ~ 2n.
  return static_cast<int64_t>(2 * padded) * per_sample;
}

}  // namespace presto
