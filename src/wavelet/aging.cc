#include "src/wavelet/aging.h"

#include <cmath>

#include "src/util/assert.h"
#include "src/wavelet/transform.h"

namespace presto {

std::vector<Sample> WaveletAgingSummarize(const std::vector<Sample>& samples,
                                          int factor) {
  if (samples.empty() || factor <= 1) {
    return samples;
  }
  int levels = 0;
  while ((1 << levels) < factor) {
    ++levels;
  }
  const size_t window = static_cast<size_t>(1) << levels;

  auto coeffs = ForwardDwt(ValuesOf(samples), WaveletKind::kHaar, levels);
  PRESTO_CHECK(coeffs.ok());
  const auto [begin, end] = coeffs->ApproxRange();
  // Haar approximation at level L = window mean * 2^(L/2); undo the gain.
  const double scale = std::pow(2.0, -static_cast<double>(levels) / 2.0);

  std::vector<Sample> out;
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const size_t src = (i - begin) * window;
    if (src >= samples.size()) {
      break;  // padding windows beyond the real signal
    }
    out.push_back(Sample{samples[src].t, coeffs->data[i] * scale});
  }
  return out;
}

std::vector<Sample> UpsampleToGrid(const std::vector<Sample>& coarse,
                                   Duration grid_period,
                                   SimTime start, size_t count) {
  PRESTO_CHECK(grid_period > 0);
  std::vector<Sample> out;
  out.reserve(count);
  size_t j = 0;
  for (size_t i = 0; i < count; ++i) {
    const SimTime t = start + static_cast<Duration>(i) * grid_period;
    while (j + 1 < coarse.size() && coarse[j + 1].t <= t) {
      ++j;
    }
    const double v = coarse.empty() ? 0.0 : coarse[j].value;
    out.push_back(Sample{t, v});
  }
  return out;
}

}  // namespace presto
