// Wavelet-based multi-resolution aging (paper §4, following Ganesan et al. [10]):
// when the sensor archive fills, old data is replaced by its wavelet approximation at a
// coarser level — queries on aged ranges still succeed, at reduced fidelity.

#ifndef SRC_WAVELET_AGING_H_
#define SRC_WAVELET_AGING_H_

#include <vector>

#include "src/util/sample.h"

namespace presto {

// Reduces `samples` by `factor` (rounded up to a power of two) using the Haar
// approximation band: each output sample is the normalized approximation coefficient
// of one window, i.e. the window mean, timestamped at the window start. Signature
// matches flash::AgingSummarizer so it can be plugged into ArchiveStore directly.
std::vector<Sample> WaveletAgingSummarize(const std::vector<Sample>& samples, int factor);

// Reconstruction helper for analysis/benches: upsamples an aged (coarse) series back to
// a target grid with step interpolation, for error-vs-age measurements.
std::vector<Sample> UpsampleToGrid(const std::vector<Sample>& coarse,
                                   Duration grid_period,
                                   SimTime start, size_t count);

}  // namespace presto

#endif  // SRC_WAVELET_AGING_H_
