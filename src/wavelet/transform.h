// 1-D discrete wavelet transform (Haar and Daubechies-4), the signal-processing
// substrate for batched-push compression, denoising (paper Fig. 2, "wavelet
// denoising"), and multi-resolution aging of the sensor archive (paper §4, [10]).

#ifndef SRC_WAVELET_TRANSFORM_H_
#define SRC_WAVELET_TRANSFORM_H_

#include <vector>

#include "src/util/result.h"

namespace presto {

enum class WaveletKind : uint8_t {
  kHaar = 0,
  kDaubechies4 = 1,
};

// Pyramid DWT coefficients. Layout of `data` (padded length n = 2^k):
//   [ approx(level L) | detail(level L) | detail(level L-1) | ... | detail(level 1) ]
// where approx/detail at level L have n / 2^L entries each.
struct DwtCoeffs {
  WaveletKind kind = WaveletKind::kHaar;
  int levels = 0;
  size_t original_length = 0;  // before padding
  std::vector<double> data;    // padded power-of-two length

  size_t PaddedLength() const { return data.size(); }
  // Span [begin, end) of the detail coefficients at `level` (1 = finest).
  std::pair<size_t, size_t> DetailRange(int level) const;
  // Span of the coarsest approximation coefficients.
  std::pair<size_t, size_t> ApproxRange() const;
};

// Forward transform. The signal is edge-padded (replicating the last value) to the next
// power of two. `levels` is clamped to what the padded length supports; levels <= 0
// selects the maximum. Fails on an empty signal.
Result<DwtCoeffs> ForwardDwt(const std::vector<double>& signal, WaveletKind kind,
                             int levels);

// Inverse transform; returns exactly original_length samples.
std::vector<double> InverseDwt(const DwtCoeffs& coeffs);

// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

// Abstract op count for one forward or inverse pass (CPU energy accounting).
int64_t DwtCostOps(size_t length, WaveletKind kind);

}  // namespace presto

#endif  // SRC_WAVELET_TRANSFORM_H_
