#include "src/wavelet/codec.h"

#include <cmath>

#include "src/util/assert.h"
#include "src/util/bitpack.h"
#include "src/util/bytes.h"
#include "src/wavelet/denoise.h"

namespace presto {
namespace {

// Exp-Golomb style coding for non-negative integers: unary bucket (bit length - 1)
// followed by the value's low bits. Small magnitudes -> few bits.
void WriteMagnitude(BitWriter* w, uint64_t v) {
  PRESTO_DCHECK(v >= 1);
  int bits = 0;
  uint64_t tmp = v;
  while (tmp > 0) {
    ++bits;
    tmp >>= 1;
  }
  w->WriteUnary(bits - 1);
  if (bits > 1) {
    // Leading bit is implied by the bucket; store the rest.
    w->WriteBits(v & ((1ULL << (bits - 1)) - 1), bits - 1);
  }
}

uint64_t ReadMagnitude(BitReader* r) {
  const int bucket = r->ReadUnary();
  if (bucket == 0) {
    return 1;
  }
  return (1ULL << bucket) | r->ReadBits(bucket);
}

}  // namespace

namespace {

std::vector<Sample> GridSamples(SimTime start, Duration period,
                                const std::vector<double>& values) {
  std::vector<Sample> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back(Sample{start + static_cast<Duration>(i) * period, values[i]});
  }
  return out;
}

}  // namespace

std::vector<uint8_t> EncodeRawBatch(SimTime start, Duration period,
                                    const std::vector<double>& values) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(BatchFormat::kRaw));
  w.WriteVarU64(values.size());
  w.WriteI64(start);
  w.WriteVarU64(static_cast<uint64_t>(period));
  for (double v : values) {
    w.WriteF32(static_cast<float>(v));
  }
  return w.TakeBuffer();
}

Result<std::vector<uint8_t>> EncodeWaveletBatch(SimTime start, Duration period,
                                                const std::vector<double>& values,
                                                const CodecParams& params) {
  if (values.empty()) {
    return InvalidArgumentError("codec: empty batch");
  }
  PRESTO_CHECK(params.quant_step > 0.0);
  auto coeffs = ForwardDwt(values, params.kind, params.levels);
  if (!coeffs.ok()) {
    return coeffs.status();
  }
  if (params.denoise && coeffs->levels >= 1) {
    const double sigma = EstimateNoiseSigma(*coeffs);
    const double threshold =
        UniversalThreshold(sigma, coeffs->PaddedLength()) * params.denoise_scale;
    ThresholdDetails(&*coeffs, threshold, ThresholdMode::kHard);
  }

  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(BatchFormat::kWavelet));
  w.WriteVarU64(values.size());
  w.WriteI64(start);
  w.WriteVarU64(static_cast<uint64_t>(period));
  w.WriteU8(static_cast<uint8_t>(params.kind));
  w.WriteU8(static_cast<uint8_t>(coeffs->levels));
  w.WriteF32(static_cast<float>(params.quant_step));

  // Significance bitmap + sign/magnitude for nonzero quantized coefficients.
  BitWriter bits;
  for (double c : coeffs->data) {
    const int64_t q = static_cast<int64_t>(std::llround(c / params.quant_step));
    if (q == 0) {
      bits.WriteBits(0, 1);
      continue;
    }
    bits.WriteBits(1, 1);
    bits.WriteBits(q < 0 ? 1 : 0, 1);
    WriteMagnitude(&bits, static_cast<uint64_t>(q < 0 ? -q : q));
  }
  w.WriteBytes(bits.bytes());
  return w.TakeBuffer();
}

std::vector<uint8_t> EncodeIrregularBatch(const std::vector<Sample>& samples) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(BatchFormat::kIrregular));
  w.WriteVarU64(samples.size());
  w.WriteI64(samples.empty() ? 0 : samples.front().t);
  w.WriteVarU64(0);  // period: meaningless for irregular data
  SimTime prev = samples.empty() ? 0 : samples.front().t;
  for (const Sample& s : samples) {
    PRESTO_DCHECK(s.t >= prev);
    w.WriteVarU64(static_cast<uint64_t>((s.t - prev) / kMillisecond));
    w.WriteF32(static_cast<float>(s.value));
    prev += ((s.t - prev) / kMillisecond) * kMillisecond;
  }
  return w.TakeBuffer();
}

Result<DecodedBatch> DecodeBatch(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto format = r.ReadU8();
  if (!format.ok()) {
    return InvalidArgumentError("codec: empty payload");
  }
  auto count = r.ReadVarU64();
  auto start = r.ReadI64();
  auto period = r.ReadVarU64();
  if (!count.ok() || !start.ok() || !period.ok()) {
    return InvalidArgumentError("codec: truncated batch header");
  }
  DecodedBatch out;
  out.format = static_cast<BatchFormat>(*format);
  out.start = *start;
  out.period = static_cast<Duration>(*period);

  if (*format == static_cast<uint8_t>(BatchFormat::kRaw)) {
    std::vector<double> values;
    values.reserve(*count);
    for (uint64_t i = 0; i < *count; ++i) {
      auto v = r.ReadF32();
      if (!v.ok()) {
        return InvalidArgumentError("codec: truncated raw batch");
      }
      values.push_back(static_cast<double>(*v));
    }
    out.samples = GridSamples(out.start, out.period, values);
    return out;
  }
  if (*format == static_cast<uint8_t>(BatchFormat::kIrregular)) {
    SimTime t = out.start;
    for (uint64_t i = 0; i < *count; ++i) {
      auto delta = r.ReadVarU64();
      auto v = r.ReadF32();
      if (!delta.ok() || !v.ok()) {
        return InvalidArgumentError("codec: truncated irregular batch");
      }
      t += static_cast<Duration>(*delta) * kMillisecond;
      out.samples.push_back(Sample{t, static_cast<double>(*v)});
    }
    return out;
  }
  if (*format != static_cast<uint8_t>(BatchFormat::kWavelet)) {
    return InvalidArgumentError("codec: unknown batch format");
  }

  auto kind = r.ReadU8();
  auto levels = r.ReadU8();
  auto quant = r.ReadF32();
  auto packed = r.ReadBytes();
  if (!kind.ok() || !levels.ok() || !quant.ok() || !packed.ok()) {
    return InvalidArgumentError("codec: truncated wavelet header");
  }
  if (*count == 0) {
    return InvalidArgumentError("codec: empty wavelet batch");
  }
  DwtCoeffs coeffs;
  coeffs.kind = static_cast<WaveletKind>(*kind);
  coeffs.levels = *levels;
  coeffs.original_length = *count;
  coeffs.data.assign(NextPowerOfTwo(*count), 0.0);

  BitReader bits(*packed);
  for (double& c : coeffs.data) {
    if (bits.ReadBits(1) == 0) {
      continue;
    }
    const bool negative = bits.ReadBits(1) == 1;
    const uint64_t magnitude = ReadMagnitude(&bits);
    const double value = static_cast<double>(magnitude) * static_cast<double>(*quant);
    c = negative ? -value : value;
  }
  out.samples = GridSamples(out.start, out.period, InverseDwt(coeffs));
  return out;
}

int64_t CompressCostOps(size_t n, const CodecParams& params) {
  return DwtCostOps(n, params.kind) + static_cast<int64_t>(n) * 4;
}

}  // namespace presto
