// Batch wire codec: turns a window of regularly sampled values into radio payload
// bytes, either raw (float32 per sample) or wavelet-compressed (threshold + quantize +
// bit-pack). The byte counts this codec produces are what the energy model charges for,
// making compression-vs-energy tradeoffs (Figure 2) real rather than assumed.

#ifndef SRC_WAVELET_CODEC_H_
#define SRC_WAVELET_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/util/result.h"
#include "src/util/sample.h"
#include "src/util/span.h"
#include "src/wavelet/transform.h"

namespace presto {

enum class BatchFormat : uint8_t {
  kRaw = 0,        // regular grid, float32 per sample
  kWavelet = 1,    // regular grid, thresholded + quantized DWT coefficients
  kIrregular = 2,  // explicit (delta-ms, float32) pairs — aged or gappy archive data
};

struct CodecParams {
  WaveletKind kind = WaveletKind::kHaar;
  int levels = 0;              // <= 0: maximum decomposition depth
  double quant_step = 0.02;    // coefficient quantization step (value units)
  bool denoise = true;         // apply universal threshold before quantizing
  double denoise_scale = 1.0;  // multiplier on the universal threshold
};

struct DecodedBatch {
  BatchFormat format = BatchFormat::kRaw;
  SimTime start = 0;
  Duration period = 0;          // 0 for kIrregular
  std::vector<Sample> samples;  // always populated, time-ordered

  std::vector<double> Values() const { return ValuesOf(samples); }
};

// Encodes `values[i]` sampled at `start + i * period` without compression.
std::vector<uint8_t> EncodeRawBatch(SimTime start, Duration period,
                                    const std::vector<double>& values);

// Wavelet-compresses the batch. Reconstruction error is bounded by the quantization
// step plus whatever the denoising threshold removed (which, on noisy signals, is
// mostly noise — that is the point).
Result<std::vector<uint8_t>> EncodeWaveletBatch(SimTime start, Duration period,
                                                const std::vector<double>& values,
                                                const CodecParams& params);

// Encodes arbitrary time-ordered samples (no grid assumption): varint millisecond
// deltas + float32 values. Used for archive replies that span aged (mixed-resolution)
// regions where the grid codecs do not apply.
std::vector<uint8_t> EncodeIrregularBatch(const std::vector<Sample>& samples);

// Decodes any format (dispatching on the leading format byte).
Result<DecodedBatch> DecodeBatch(span<const uint8_t> bytes);

// Abstract op count for compressing a batch of `n` (CPU energy accounting).
int64_t CompressCostOps(size_t n, const CodecParams& params);

}  // namespace presto

#endif  // SRC_WAVELET_CODEC_H_
