// Wavelet denoising (VisuShrink-style): estimate the noise floor from the finest
// detail band and threshold detail coefficients. Used by the batched-push pipeline —
// "more batching results in better compression and data cleaning at the source"
// (paper §3, Figure 2) — because both the sigma estimate and the threshold's
// sqrt(2 ln n) term improve with batch length.

#ifndef SRC_WAVELET_DENOISE_H_
#define SRC_WAVELET_DENOISE_H_

#include <vector>

#include "src/wavelet/transform.h"

namespace presto {

enum class ThresholdMode : uint8_t {
  kHard = 0,  // zero out |c| < t, keep the rest untouched
  kSoft = 1,  // shrink all detail magnitudes by t
};

// Robust noise-sigma estimate from the finest-level detail coefficients:
// MAD / 0.6745 (Donoho & Johnstone).
double EstimateNoiseSigma(const DwtCoeffs& coeffs);

// Universal threshold sigma * sqrt(2 ln n).
double UniversalThreshold(double sigma, size_t n);

// Applies the threshold to all detail bands in place; approximation is untouched.
// Returns the number of coefficients zeroed.
size_t ThresholdDetails(DwtCoeffs* coeffs, double threshold, ThresholdMode mode);

// One-call denoiser: forward DWT, universal threshold scaled by `threshold_scale`,
// inverse DWT. levels <= 0 selects the maximum decomposition depth.
Result<std::vector<double>> Denoise(const std::vector<double>& signal, WaveletKind kind,
                                    int levels, ThresholdMode mode,
                                    double threshold_scale = 1.0);

}  // namespace presto

#endif  // SRC_WAVELET_DENOISE_H_
