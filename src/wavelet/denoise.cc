#include "src/wavelet/denoise.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"

namespace presto {

double EstimateNoiseSigma(const DwtCoeffs& coeffs) {
  PRESTO_CHECK(coeffs.levels >= 1);
  const auto [begin, end] = coeffs.DetailRange(1);
  std::vector<double> mags;
  mags.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    mags.push_back(std::abs(coeffs.data[i]));
  }
  if (mags.empty()) {
    return 0.0;
  }
  const size_t mid = mags.size() / 2;
  std::nth_element(mags.begin(), mags.begin() + static_cast<ptrdiff_t>(mid), mags.end());
  const double mad = mags[mid];
  return mad / 0.6745;
}

double UniversalThreshold(double sigma, size_t n) {
  if (n < 2) {
    return 0.0;
  }
  return sigma * std::sqrt(2.0 * std::log(static_cast<double>(n)));
}

size_t ThresholdDetails(DwtCoeffs* coeffs, double threshold, ThresholdMode mode) {
  PRESTO_CHECK(coeffs != nullptr);
  size_t zeroed = 0;
  for (int level = 1; level <= coeffs->levels; ++level) {
    const auto [begin, end] = coeffs->DetailRange(level);
    for (size_t i = begin; i < end; ++i) {
      double& c = coeffs->data[i];
      if (std::abs(c) < threshold) {
        c = 0.0;
        ++zeroed;
      } else if (mode == ThresholdMode::kSoft) {
        c = c > 0.0 ? c - threshold : c + threshold;
      }
    }
  }
  return zeroed;
}

Result<std::vector<double>> Denoise(const std::vector<double>& signal, WaveletKind kind,
                                    int levels, ThresholdMode mode,
                                    double threshold_scale) {
  auto coeffs = ForwardDwt(signal, kind, levels);
  if (!coeffs.ok()) {
    return coeffs.status();
  }
  const double sigma = EstimateNoiseSigma(*coeffs);
  const double threshold =
      UniversalThreshold(sigma, coeffs->PaddedLength()) * threshold_scale;
  ThresholdDetails(&*coeffs, threshold, mode);
  return InverseDwt(*coeffs);
}

}  // namespace presto
