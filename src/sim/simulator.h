// Single-threaded discrete-event simulator.
//
// This is the testbed substitute for the paper's mote/proxy hardware: every radio
// transmission, flash operation, sensing tick, and query in PRESTO is an event on this
// queue. Determinism contract: events at equal timestamps fire in scheduling order, and
// all randomness is injected via seeded Pcg32 streams, so runs replay bit-identically.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/util/sim_time.h"

namespace presto {

// Handle to a scheduled event; allows cancellation (e.g. a retransmission timer being
// serviced by an ACK). Copies share the underlying event.
class EventHandle {
 public:
  EventHandle() = default;

  // Marks the event so the simulator skips it; safe to call multiple times or after the
  // event has fired.
  void Cancel();

  bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `t` (must be >= Now()). Returns a cancellable handle.
  EventHandle ScheduleAt(SimTime t, std::function<void()> fn);

  // Schedules `fn` after `delay` (must be >= 0).
  EventHandle ScheduleIn(Duration delay, std::function<void()> fn);

  // Executes the next event. Returns false when the queue is empty.
  bool Step();

  // Runs until the queue is empty or `t` is reached; the clock finishes at exactly `t`
  // if any events remain beyond it (they stay queued).
  void RunUntil(SimTime t);

  // Runs until the queue drains.
  void RunAll();

  uint64_t events_executed() const { return events_executed_; }
  size_t events_pending() const { return queue_.size(); }

  // Rolling FNV-1a hash of every executed event's (time, seq). Two runs interleaving
  // events identically — the determinism contract multi-proxy replay relies on —
  // produce equal fingerprints; any divergence in event order changes it.
  uint64_t fingerprint() const { return fingerprint_; }

  // Timestamp of the next queued event, or -1 when the queue is empty. Cancelled
  // events may still occupy the queue, so this is a lower bound on the next real event.
  SimTime NextEventTime() const { return queue_.empty() ? -1 : queue_.top().time; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO among same-time events
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t fingerprint_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace presto

#endif  // SRC_SIM_SIMULATOR_H_
