// Discrete-event simulator with a parallel shard-lane execution engine.
//
// This is the testbed substitute for the paper's mote/proxy hardware: every radio
// transmission, flash operation, sensing tick, and query in PRESTO is an event here.
//
// Two execution modes share one event representation:
//
//  - Legacy (default): a single global queue executed inline, exactly the seed
//    behaviour. Events at equal timestamps fire in scheduling order, all randomness is
//    injected via seeded Pcg32 streams, and fingerprint() is the original global
//    rolling FNV-1a over every executed event's (time, seq) — replays bit-identically.
//
//  - Shard lanes (ConfigureLanes): the queue splits into `num_lanes` per-lane queues
//    (the deployment maps lane = home shard) executed by a worker pool under an
//    epoch-barrier schedule. Within an epoch [T, T+E) every lane runs its own events
//    independently; an event that schedules into *another* lane posts to a per-lane
//    mailbox instead, and mailboxes are drained serially at the next barrier (the
//    cross-lane delivery granularity is therefore the epoch). A serial *control lane*
//    runs at barriers with no workers active — deployment mutations (kill / revive /
//    promote / migrate / rebalance) execute there so they may touch any lane's state.
//
//    Determinism contract in lane mode: each lane keeps its own clock, sequence
//    counter, and rolling FNV fingerprint; mailboxes are single-writer FIFOs drained
//    in (source-lane, FIFO) order on a fixed absolute epoch grid, so per-lane event
//    streams do not depend on the worker count. fingerprint() folds the per-lane
//    fingerprints order-independently (commutative sum of mixed lane hashes) together
//    with a barrier-sequence hash over (epoch start, mail count) of every draining
//    barrier. threads=1 and threads=N produce identical fingerprints; a simulator
//    that never configured lanes keeps the legacy global fingerprint path.
//
// Events are a typed, pool-allocated union instead of heap-allocated std::function
// closures: timer fires, radio frame deliveries, batch flushes, query stages, and
// topology mutations dispatch through an EventSink with a small POD payload (bulk
// frame bytes ride in the event itself), so typed events allocate no closure state.
// Cancellation is generation-based: a handle names (lane, slot, generation) and a
// stale generation makes both Cancel() and queue pops no-ops.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/result.h"
#include "src/util/sim_time.h"

namespace presto {

class ByteReader;
class ByteWriter;
class EventHandle;
class Simulator;

// Typed event classes. kCallback is the escape hatch (tests, benches, one-off
// orchestration); the named kinds dispatch through EventSink without allocating.
enum class EventKind : uint8_t {
  kCallback = 0,   // std::function<void()>
  kTimer = 1,      // PeriodicTimer fire
  kFrame = 2,      // Network frame delivery (message payload rides in the event)
  kBatchFlush = 3, // Network per-link coalescing flush
  kQuery = 4,      // query routing/completion stages, pull timeouts
  kMutation = 5,   // deployment topology mutation (control lane only)
};

// Small POD argument block for typed events. Meaning of a..f is sink-defined;
// `bytes` carries bulk payloads (radio frames) and its capacity is pooled.
struct EventPayload {
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
  uint64_t e = 0;
  uint64_t f = 0;
  std::vector<uint8_t> bytes;
};

// Receiver of typed events. Implemented by Network, UnifiedStore, ProxyNode,
// Deployment, and PeriodicTimer.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnSimEvent(EventKind kind, EventPayload& payload) = 0;

  // Checkpoint restore hook: Simulator::LoadState announces every restored queue
  // event to its sink (per lane, in (time, seq) order) so holders of cancellable
  // handles — timers, pull timeouts, batch flushes — re-capture them. `lane` is the
  // external designator the event lives in (a worker lane index, or kLaneControl for
  // the control/legacy lane) — sinks with per-lane state use it to find the owning
  // context. Mailbox entries are not announced (cross-lane posts never had handles).
  // Default no-op: sinks whose events carry no handle state ignore it.
  virtual void OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                               const EventHandle& handle, int lane) {
    (void)t;
    (void)kind;
    (void)payload;
    (void)handle;
    (void)lane;
  }
};

// Handle to a scheduled event; allows cancellation (e.g. a retransmission timer being
// serviced by an ACK). Generation-based: cancelling after the event fired (or was
// cancelled, or its slot was reused) is a safe no-op. Cancel() must run either in the
// event's own lane, or from control context (barriers / between runs) — never from a
// concurrently executing other lane. Cross-lane (mailbox) schedules return an invalid
// handle: they cannot be cancelled once posted.
class EventHandle {
 public:
  EventHandle() = default;

  // Marks the event so the simulator skips it; safe to call multiple times or after
  // the event has fired.
  void Cancel();

  bool valid() const { return sim_ != nullptr; }

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, int lane, uint32_t slot, uint32_t gen)
      : sim_(sim), lane_(lane), slot_(slot), gen_(gen) {}
  Simulator* sim_ = nullptr;
  int lane_ = 0;  // internal lane index
  uint32_t slot_ = 0;
  uint32_t gen_ = 0;
};

class Simulator {
 public:
  // Lane designators for the `lane` parameter of the Schedule* calls.
  static constexpr int kLaneCurrent = -2;  // the scheduling context's own lane
  static constexpr int kLaneControl = -1;  // serial barrier lane

  // Sentinel returned by epoch() / epoch_cap() when no lane grid is configured
  // (legacy mode). Layers that validate a stacked barrier schedule against the cell
  // grid must treat this value explicitly ("no grid" — not "grid of length zero"):
  // an unconfigured cell imposes no epoch constraint, and arithmetic on the grid
  // (GridEnd) is meaningless. Never a legal configured epoch (ConfigureLanes
  // requires epoch > 0).
  static constexpr Duration kNoEpochGrid = 0;

  Simulator() { lanes_.resize(1); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  // Splits execution into `num_lanes` parallel lanes plus the serial control lane,
  // run by `threads` workers (clamped to [1, num_lanes]; the calling thread is one of
  // them) on an absolute epoch grid of length `epoch`. Must be called once, before
  // any event is scheduled. num_lanes <= 1 keeps the legacy single-queue engine.
  void ConfigureLanes(int num_lanes, int threads, Duration epoch);

  // Worker lanes configured (0 in legacy mode).
  int num_lanes() const { return lane_mode_ ? static_cast<int>(lanes_.size()) - 1 : 0; }
  int threads() const { return threads_; }
  // The *current* epoch-barrier grid length (kNoEpochGrid in legacy mode). With a
  // lookahead bound applied this can be smaller than the configured cap and can
  // change at barriers; layers that stack their own barrier schedule on top (the
  // federation) must validate against epoch_cap(), which is stable for the run.
  Duration epoch() const { return lane_mode_ ? epoch_ : kNoEpochGrid; }
  // The epoch passed to ConfigureLanes — the upper bound SetLookahead can never
  // exceed (kNoEpochGrid in legacy mode).
  Duration epoch_cap() const { return lane_mode_ ? epoch_cap_ : kNoEpochGrid; }
  // The lookahead bound currently applied (0 = none; the configured cap rules).
  Duration lookahead() const { return lookahead_; }

  // Conservative-lookahead mode: bounds the epoch so cross-lane deliveries (which
  // clamp to the next barrier) are never deferred past `lookahead` — with
  // `lookahead` <= the minimum cross-lane wired latency, clamped arrival times
  // equal true arrival times and sub-epoch latencies become faithful. The engine
  // picks epoch = min(epoch_cap, lookahead) and re-anchors the absolute grid at the
  // current barrier; lookahead = 0 clears the bound (epoch returns to the cap).
  // Control context only (between runs or at a barrier, on the control lane), lane
  // mode only. Deterministic: the call sites are themselves control-lane events, so
  // the epoch-length schedule replays identically across worker counts.
  void SetLookahead(Duration lookahead);

  // Barrier-time lane re-binding: moves every *live* pending event and undrained
  // mailbox entry of `from_lane` that `match`es to `to_lane`, preserving delivery
  // times and relative order ((time, seq) order; mailbox entries keep their source
  // FIFO attribution). Control context only — lane membership changes only at
  // barriers, on the control lane. Handles into moved events are invalidated (the
  // old slot's generation bumps), so handle-holders (timers, pull timeouts) must
  // re-bind cooperatively instead; this call is for handle-free events (frame
  // deliveries). The rebind is folded into the barrier hash (order-independent
  // per-lane fingerprints are unaffected until the events execute in their new
  // lane). Returns the number of events + mails moved.
  size_t RebindMatchingEvents(
      int from_lane, int to_lane,
      const std::function<bool(EventKind, const EventSink*, const EventPayload&)>&
          match);

  // The lane the calling context executes in: a worker lane index during lane event
  // execution, else kLaneControl (also always kLaneControl in legacy mode).
  int CurrentLane() const;

  // Current simulated time: the executing lane's clock during event execution, the
  // global barrier clock otherwise.
  SimTime Now() const;

  // Schedules `fn` at absolute time `t` (must be >= Now()) in `lane` (default: the
  // scheduling context's lane). Returns a cancellable handle, except for cross-lane
  // posts from a running lane (mailbox; invalid handle).
  EventHandle ScheduleAt(SimTime t, std::function<void()> fn, int lane = kLaneCurrent);

  // Schedules `fn` after `delay` (must be >= 0).
  EventHandle ScheduleIn(Duration delay, std::function<void()> fn,
                         int lane = kLaneCurrent);

  // Schedules a typed event dispatched as sink->OnSimEvent(kind, payload).
  EventHandle ScheduleEventAt(SimTime t, EventKind kind, EventSink* sink,
                              EventPayload payload, int lane = kLaneCurrent);

  // Runs a barrier-time hook before each epoch's workers launch (lane mode only):
  // the deployment pre-extends shared lazily-built world state (e.g. the temperature
  // field's weather fronts) through `epoch_end` so lane execution only reads it.
  void SetBarrierHook(std::function<void(SimTime epoch_end)> hook);

  // Legacy: executes the next event, returns false when the queue is empty.
  // Lane mode: advances one epoch covering the next pending event (or returns false
  // when nothing is pending anywhere).
  bool Step();

  // Runs until pending work is exhausted or `t` is reached; the clock finishes at
  // exactly `t` if any events remain beyond it (they stay queued). Events scheduled
  // at exactly `t` execute, matching the legacy inclusive bound.
  void RunUntil(SimTime t);

  // Runs until every queue and mailbox drains.
  void RunAll();

  uint64_t events_executed() const;
  size_t events_pending() const;

  // Replay fingerprint. Legacy: the global rolling FNV-1a over executed (time, seq).
  // Lane mode: order-independent fold of the per-lane rolling hashes plus the
  // barrier-sequence hash (see file header). Equal across reruns and worker counts.
  uint64_t fingerprint() const;

  // Timestamp of the next queued event (in any lane or mailbox), or -1 when idle.
  // Cancelled events may still occupy queues, so this is a lower bound.
  SimTime NextEventTime() const;

  // Introspection for tests: live + free slot counts of one lane's event pool.
  size_t PoolSlotsForTest(int lane) const;
  size_t FreeSlotsForTest(int lane) const;

  // --- Checkpoint support ---------------------------------------------------
  // Registers `sink` in the deterministic sink table checkpoints use to name event
  // receivers. Idempotent; returns the sink's stable id. Subsystems register in
  // their constructors, so an identically configured restore run (same construction
  // order) assigns identical ids — the contract that lets serialized sink ids
  // resolve to live objects.
  uint64_t RegisterSink(EventSink* sink);
  size_t RegisteredSinkCount() const { return sinks_.size(); }

  // Serializes the complete engine state: clocks, epoch grid, per-lane sequence
  // counters and fingerprints, every pending queue event (original (time, seq) —
  // tie-break order is part of the replay contract) and undrained mailbox entry.
  // Control context only (between runs or at a barrier). Fails without side effects
  // if any pending event is a kCallback closure (closures cannot be serialized;
  // typed events only) or references an unregistered sink.
  Status SaveState(ByteWriter& w) const;

  // Restores state saved by SaveState into a freshly constructed, identically
  // configured simulator: same lane count and epoch cap — the thread count may
  // differ (replay is thread-count independent). Existing queues are discarded;
  // events re-enter their pools with their original (time, seq) keys and each is
  // announced via OnEventRestored. Call after every subsystem's own LoadState, so
  // re-captured handles land in fully restored objects.
  Status LoadState(ByteReader& r);

 private:
  struct QueueEntry {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO among same-time events within a lane
    uint32_t slot;
    uint32_t gen;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  struct Event {
    EventKind kind = EventKind::kCallback;
    uint32_t gen = 0;
    EventSink* sink = nullptr;
    EventPayload payload;
    std::function<void()> fn;
  };
  // A cross-lane schedule awaiting the next barrier. Lives in the *target* lane's
  // per-source FIFO, written only by the source lane's worker.
  struct Mail {
    SimTime time;
    EventKind kind;
    EventSink* sink;
    EventPayload payload;
    std::function<void()> fn;
  };
  struct Lane {
    SimTime now = 0;
    uint64_t next_seq = 0;
    uint64_t executed = 0;
    uint64_t fp = 0xcbf29ce484222325ull;  // FNV-1a offset basis
    std::vector<Event> pool;
    std::vector<uint32_t> free_slots;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue;
    std::vector<std::vector<Mail>> inbox;  // [source worker lane] -> FIFO
  };

  friend class EventHandle;

  int ControlIndex() const {
    return lane_mode_ ? static_cast<int>(lanes_.size()) - 1 : 0;
  }
  int ResolveLane(int lane) const;
  EventHandle Push(int internal_lane, SimTime t, EventKind kind, EventSink* sink,
                   EventPayload&& payload, std::function<void()>&& fn);
  uint32_t Enqueue(Lane& lane, SimTime t, EventKind kind, EventSink* sink,
                   EventPayload&& payload, std::function<void()>&& fn);
  void CancelEvent(int internal_lane, uint32_t slot, uint32_t gen);
  void ReleaseSlot(Lane& lane, uint32_t slot);
  // Executes queued events of `lane` with time < end (<= end when `inclusive`).
  void RunLaneTo(int internal_lane, SimTime end, bool inclusive);
  bool ExecuteOne(Lane& lane);
  // One barrier + one epoch [global_now_, end): drain mailboxes and run the hook,
  // execute the worker lanes through the epoch, then run due control-lane events at
  // the closing barrier (with the global clock at `end` and every worker idle).
  void RunEpoch(SimTime end, bool inclusive);
  void RunLanesParallel(SimTime end, bool inclusive);
  void WorkerLoop();
  void ClaimLanes(SimTime end, bool inclusive);
  void MixFp(uint64_t& fp, uint64_t v) const;
  // First barrier strictly after `t` on the current grid. The grid is anchored at
  // the barrier where the epoch length last changed (epoch_anchor_, 0 until a
  // SetLookahead retune), so shrinking or restoring the epoch mid-run keeps every
  // subsequent barrier an exact multiple away from a past barrier.
  SimTime GridEnd(SimTime t) const {
    return epoch_anchor_ + ((t - epoch_anchor_) / epoch_ + 1) * epoch_;
  }

  bool lane_mode_ = false;
  int threads_ = 1;
  Duration epoch_ = 0;      // current effective epoch (<= epoch_cap_)
  Duration epoch_cap_ = 0;  // the ConfigureLanes epoch
  Duration lookahead_ = 0;  // 0 = no lookahead bound
  SimTime epoch_anchor_ = 0;
  SimTime global_now_ = 0;
  uint64_t barrier_hash_ = 0xcbf29ce484222325ull;
  bool any_scheduled_ = false;
  std::vector<Lane> lanes_;  // legacy: [0]; lane mode: [0..L-1] workers, [L] control
  std::function<void(SimTime)> barrier_hook_;
  std::vector<EventSink*> sinks_;  // checkpoint sink table, construction order
  std::map<const EventSink*, uint64_t> sink_ids_;

  // Worker pool (lane mode, threads_ > 1).
  std::vector<std::thread> workers_;
  std::mutex pool_m_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  uint64_t pool_gen_ = 0;
  SimTime pool_end_ = 0;
  bool pool_inclusive_ = false;
  bool pool_quit_ = false;
  int pool_done_ = 0;
  std::atomic<int> next_lane_{0};
};

}  // namespace presto

#endif  // SRC_SIM_SIMULATOR_H_
