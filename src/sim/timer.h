// Periodic timer built on the simulator, used for sensing loops, LPL wakeups, model
// refit schedules, and duty-cycle beacons. The period can be changed while running
// (query-sensor matching retunes sensors this way).
//
// Fires as a typed, pool-allocated kTimer event (no per-fire allocation). In lane
// mode the timer is bound to its owner's lane with BindLane() so that fires execute
// with the owner's other events; by default it fires in whatever lane Start() was
// called from (the control lane when started from outside the simulator).

#ifndef SRC_SIM_TIMER_H_
#define SRC_SIM_TIMER_H_

#include <functional>

#include "src/sim/simulator.h"

namespace presto {

class PeriodicTimer : public EventSink {
 public:
  // Does not start; call Start(). `sim` must outlive the timer.
  PeriodicTimer(Simulator* sim, std::function<void()> callback);
  ~PeriodicTimer() override { Stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  // Pins fires to `lane` (a worker lane index, or Simulator::kLaneControl). Call
  // before Start(); the deployment binds node timers to their shard's lane.
  void BindLane(int lane) { lane_ = lane; }

  // Moves a (possibly running) timer to `new_lane`: cancels the pending fire and
  // reschedules it at the same absolute fire time (clamped to now) in the new lane.
  // Control context only — this is the cooperative half of barrier-time lane
  // re-binding (the timer owns its handle, so Simulator::RebindMatchingEvents must
  // not move kTimer events out from under it).
  void Rebind(int new_lane);

  // Begins firing every `period`, first fire after `initial_delay` (defaults to one
  // period). Restarting a running timer reschedules it.
  void Start(Duration period, Duration initial_delay = -1);

  // Cancels the pending fire; idempotent.
  void Stop();

  // Changes the period. Takes effect for the *next* fire; the currently pending fire
  // is rescheduled relative to now.
  void SetPeriod(Duration period);

  bool running() const { return running_; }
  Duration period() const { return period_; }

  void OnSimEvent(EventKind kind, EventPayload& payload) override;

  // Checkpoint: period / running flag / absolute next-fire time. The pending fire
  // itself lives in the simulator's queue; LoadState drops the stale handle and
  // OnEventRestored re-captures it when the engine restores the kTimer event.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);
  void OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                       const EventHandle& handle, int lane) override;

 private:
  void Fire();
  void ScheduleNext(Duration delay);

  Simulator* sim_;
  std::function<void()> callback_;
  EventHandle pending_;
  Duration period_ = 0;
  SimTime next_fire_at_ = 0;  // absolute time of the pending fire (for Rebind)
  int lane_ = Simulator::kLaneCurrent;
  bool running_ = false;
};

}  // namespace presto

#endif  // SRC_SIM_TIMER_H_
