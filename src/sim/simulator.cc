#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "src/util/assert.h"
#include "src/util/ckpt.h"
#include "src/util/hash.h"

namespace presto {
namespace {

// Which lane (of which simulator) the calling thread is currently executing. Control
// contexts (the main thread between epochs, barrier-time execution, legacy mode)
// leave this unset.
struct ThreadLaneContext {
  const Simulator* sim = nullptr;
  int lane = 0;  // external worker lane index
};
thread_local ThreadLaneContext tl_lane_ctx;

}  // namespace

void EventHandle::Cancel() {
  if (sim_ != nullptr) {
    sim_->CancelEvent(lane_, slot_, gen_);
  }
}

Simulator::~Simulator() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_m_);
      pool_quit_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

void Simulator::ConfigureLanes(int num_lanes, int threads, Duration epoch) {
  PRESTO_CHECK_MSG(!any_scheduled_, "ConfigureLanes must precede all scheduling");
  PRESTO_CHECK_MSG(!lane_mode_, "lanes already configured");
  if (num_lanes <= 1) {
    return;  // legacy single-queue engine
  }
  PRESTO_CHECK_MSG(epoch > 0, "lane epoch must be positive");
  lane_mode_ = true;
  epoch_ = epoch;
  epoch_cap_ = epoch;
  threads_ = std::max(1, std::min(threads, num_lanes));
  lanes_.assign(static_cast<size_t>(num_lanes) + 1, Lane{});
  for (Lane& lane : lanes_) {
    lane.inbox.resize(static_cast<size_t>(num_lanes));
  }
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Simulator::SetLookahead(Duration lookahead) {
  PRESTO_CHECK_MSG(lane_mode_, "lookahead requires the lane engine");
  PRESTO_CHECK_MSG(lookahead >= 0, "negative lookahead");
  PRESTO_CHECK_MSG(CurrentLane() == kLaneControl,
                   "lookahead changes only from control context");
  lookahead_ = lookahead;
  const Duration effective =
      lookahead > 0 ? std::min(epoch_cap_, lookahead) : epoch_cap_;
  if (effective == epoch_) {
    return;
  }
  // Re-anchor the absolute grid at the current barrier: every lane has run through
  // global_now_, so barriers after it land on the new grid without ever moving a
  // barrier into the past.
  epoch_anchor_ = global_now_;
  epoch_ = effective;
}

size_t Simulator::RebindMatchingEvents(
    int from_lane, int to_lane,
    const std::function<bool(EventKind, const EventSink*, const EventPayload&)>&
        match) {
  PRESTO_CHECK_MSG(lane_mode_, "lane re-binding requires the lane engine");
  PRESTO_CHECK_MSG(CurrentLane() == kLaneControl,
                   "lane membership changes only at barriers, on the control lane");
  PRESTO_CHECK_MSG(from_lane >= 0 && from_lane < num_lanes(), "bad from_lane");
  PRESTO_CHECK_MSG(to_lane >= 0 && to_lane < num_lanes(), "bad to_lane");
  if (from_lane == to_lane) {
    return 0;
  }
  Lane& src = lanes_[static_cast<size_t>(from_lane)];
  Lane& dst = lanes_[static_cast<size_t>(to_lane)];
  size_t moved = 0;
  // Queue pass: pop everything (heap order == (time, seq) order), move matching
  // live entries — delivery times preserved, relative order preserved because the
  // target assigns fresh monotone seqs in pop order — and re-push the rest with
  // their original seqs (heap contents identical to before).
  std::vector<QueueEntry> keep;
  keep.reserve(src.queue.size());
  while (!src.queue.empty()) {
    const QueueEntry entry = src.queue.top();
    src.queue.pop();
    Event& event = src.pool[entry.slot];
    if (event.gen != entry.gen) {
      continue;  // cancelled: the slot is already free, drop the stale entry
    }
    if (!match(event.kind, event.sink, event.payload)) {
      keep.push_back(entry);
      continue;
    }
    const EventKind kind = event.kind;
    EventSink* sink = event.sink;
    EventPayload payload = std::move(event.payload);
    std::function<void()> fn = std::move(event.fn);
    ReleaseSlot(src, entry.slot);  // bumps gen: stale handles become no-ops
    Enqueue(dst, entry.time, kind, sink, std::move(payload), std::move(fn));
    ++moved;
  }
  for (const QueueEntry& entry : keep) {
    src.queue.push(entry);
  }
  // Mailbox pass: mail posted to the old lane during the just-finished epoch has
  // not drained yet (draining happens at the *opening* barrier). Append matching
  // entries to the new lane's same-source FIFO so the next drain delivers them
  // there, in the same (source, FIFO) order contract.
  for (size_t source = 0; source < src.inbox.size(); ++source) {
    std::vector<Mail>& box = src.inbox[source];
    std::vector<Mail> stay;
    for (Mail& mail : box) {
      if (match(mail.kind, mail.sink, mail.payload)) {
        dst.inbox[source].push_back(std::move(mail));
        ++moved;
      } else {
        stay.push_back(std::move(mail));
      }
    }
    box = std::move(stay);
  }
  if (moved > 0) {
    // The re-bind schedule is part of the replay contract, exactly like the
    // mailbox-drain schedule: fold (barrier, route, volume) into the barrier hash.
    MixFp(barrier_hash_, static_cast<uint64_t>(global_now_));
    MixFp(barrier_hash_, (static_cast<uint64_t>(from_lane) << 32) |
                             static_cast<uint64_t>(to_lane));
    MixFp(barrier_hash_, moved);
  }
  return moved;
}

int Simulator::CurrentLane() const {
  if (tl_lane_ctx.sim == this) {
    return tl_lane_ctx.lane;
  }
  return kLaneControl;
}

SimTime Simulator::Now() const {
  if (!lane_mode_) {
    return lanes_[0].now;
  }
  if (tl_lane_ctx.sim == this) {
    // kLaneControl is a sentinel, not an index: control events keep
    // CurrentLane() == kLaneControl but read the control lane's own clock, so a
    // control event observes its scheduled time rather than the barrier it
    // happens to execute at.
    const int lane =
        tl_lane_ctx.lane == kLaneControl ? ControlIndex() : tl_lane_ctx.lane;
    return lanes_[static_cast<size_t>(lane)].now;
  }
  return global_now_;
}

int Simulator::ResolveLane(int lane) const {
  if (!lane_mode_) {
    return 0;
  }
  if (lane == kLaneCurrent) {
    lane = CurrentLane();
  }
  if (lane == kLaneControl) {
    return ControlIndex();
  }
  PRESTO_CHECK_MSG(lane >= 0 && lane < num_lanes(), "bad lane index");
  return lane;
}

EventHandle Simulator::ScheduleAt(SimTime t, std::function<void()> fn, int lane) {
  PRESTO_CHECK_MSG(t >= Now(), "cannot schedule into the past");
  return Push(ResolveLane(lane), t, EventKind::kCallback, nullptr, EventPayload{},
              std::move(fn));
}

EventHandle Simulator::ScheduleIn(Duration delay, std::function<void()> fn, int lane) {
  PRESTO_CHECK_MSG(delay >= 0, "negative delay");
  return ScheduleAt(Now() + delay, std::move(fn), lane);
}

EventHandle Simulator::ScheduleEventAt(SimTime t, EventKind kind, EventSink* sink,
                                       EventPayload payload, int lane) {
  PRESTO_CHECK_MSG(t >= Now(), "cannot schedule into the past");
  PRESTO_CHECK(sink != nullptr && kind != EventKind::kCallback);
  return Push(ResolveLane(lane), t, kind, sink, std::move(payload), nullptr);
}

EventHandle Simulator::Push(int internal_lane, SimTime t, EventKind kind,
                            EventSink* sink, EventPayload&& payload,
                            std::function<void()>&& fn) {
  const int current = CurrentLane();
  if (current == Simulator::kLaneControl) {
    // Only control-context schedules can be "the first ever" (a lane cannot execute
    // before something was scheduled into it), so the ConfigureLanes ordering guard
    // needs no cross-thread write.
    any_scheduled_ = true;
  }
  if (lane_mode_ && current != kLaneControl && internal_lane != current) {
    // Cross-lane post from a running worker: mailbox, drained (single-writer FIFO,
    // deterministic source order) at the next barrier. Not cancellable.
    Lane& target = lanes_[static_cast<size_t>(internal_lane)];
    target.inbox[static_cast<size_t>(current)].push_back(
        Mail{t, kind, sink, std::move(payload), std::move(fn)});
    return EventHandle();
  }
  if (lane_mode_ && current == kLaneControl && internal_lane != ControlIndex() &&
      t < global_now_) {
    // A control event observes its own timestamp, which may trail the barrier —
    // but by the time control runs, worker lanes have already replayed up to it.
    // Deliveries into a worker lane clamp forward to the barrier so they can
    // never land in a lane's already-executed past.
    t = global_now_;
  }
  Lane& lane = lanes_[static_cast<size_t>(internal_lane)];
  const uint32_t slot = Enqueue(lane, t, kind, sink, std::move(payload), std::move(fn));
  return EventHandle(this, internal_lane, slot, lane.pool[slot].gen);
}

uint32_t Simulator::Enqueue(Lane& lane, SimTime t, EventKind kind, EventSink* sink,
                            EventPayload&& payload, std::function<void()>&& fn) {
  uint32_t slot;
  if (!lane.free_slots.empty()) {
    slot = lane.free_slots.back();
    lane.free_slots.pop_back();
  } else {
    slot = static_cast<uint32_t>(lane.pool.size());
    lane.pool.emplace_back();
  }
  Event& event = lane.pool[slot];
  event.kind = kind;
  event.sink = sink;
  event.payload = std::move(payload);
  event.fn = std::move(fn);
  lane.queue.push(QueueEntry{t, lane.next_seq++, slot, event.gen});
  return slot;
}

void Simulator::CancelEvent(int internal_lane, uint32_t slot, uint32_t gen) {
  Lane& lane = lanes_[static_cast<size_t>(internal_lane)];
  if (slot >= lane.pool.size() || lane.pool[slot].gen != gen) {
    return;  // already fired, cancelled, or the slot moved on to a new generation
  }
  ReleaseSlot(lane, slot);
}

void Simulator::ReleaseSlot(Lane& lane, uint32_t slot) {
  Event& event = lane.pool[slot];
  ++event.gen;  // invalidates queue entries and handles of the old generation
  event.sink = nullptr;
  event.fn = nullptr;
  // Release the payload buffer: the next occupant move-assigns its own vector over
  // this one, so retained capacity would only pin the last frame's allocation.
  event.payload.bytes = std::vector<uint8_t>();
  lane.free_slots.push_back(slot);
}

void Simulator::MixFp(uint64_t& fp, uint64_t v) const { FnvMix(fp, v); }

bool Simulator::ExecuteOne(Lane& lane) {
  const QueueEntry entry = lane.queue.top();
  lane.queue.pop();
  Event& event = lane.pool[entry.slot];
  if (event.gen != entry.gen) {
    return false;  // cancelled (slot already released)
  }
  lane.now = entry.time;
  ++lane.executed;
  MixFp(lane.fp, static_cast<uint64_t>(entry.time));
  MixFp(lane.fp, entry.seq);
  // Move the event out before dispatch: the handler may schedule into this lane and
  // reallocate the pool (and may legitimately reuse this very slot).
  const EventKind kind = event.kind;
  EventSink* sink = event.sink;
  EventPayload payload = std::move(event.payload);
  std::function<void()> fn = std::move(event.fn);
  ReleaseSlot(lane, entry.slot);
  if (kind == EventKind::kCallback) {
    fn();
  } else {
    sink->OnSimEvent(kind, payload);
  }
  return true;
}

void Simulator::RunLaneTo(int internal_lane, SimTime end, bool inclusive) {
  Lane& lane = lanes_[static_cast<size_t>(internal_lane)];
  const ThreadLaneContext saved = tl_lane_ctx;
  const bool is_control = internal_lane == ControlIndex();
  if (lane_mode_) {
    // Control keeps the kLaneControl sentinel (CurrentLane() must keep reporting
    // control context for the barrier-only mutation checks); Now() maps it back
    // to the control lane's clock.
    tl_lane_ctx =
        ThreadLaneContext{this, is_control ? kLaneControl : internal_lane};
  }
  while (!lane.queue.empty()) {
    const SimTime top = lane.queue.top().time;
    if (inclusive ? top > end : top >= end) {
      break;
    }
    ExecuteOne(lane);
  }
  tl_lane_ctx = saved;
}

void Simulator::WorkerLoop() {
  uint64_t seen_gen = 0;
  while (true) {
    SimTime end;
    bool inclusive;
    {
      std::unique_lock<std::mutex> lock(pool_m_);
      pool_cv_.wait(lock, [&] { return pool_quit_ || pool_gen_ != seen_gen; });
      if (pool_quit_) {
        return;
      }
      seen_gen = pool_gen_;
      end = pool_end_;
      inclusive = pool_inclusive_;
    }
    ClaimLanes(end, inclusive);
    {
      std::lock_guard<std::mutex> lock(pool_m_);
      ++pool_done_;
    }
    done_cv_.notify_one();
  }
}

void Simulator::ClaimLanes(SimTime end, bool inclusive) {
  const int total = num_lanes();
  int lane;
  while ((lane = next_lane_.fetch_add(1, std::memory_order_relaxed)) < total) {
    RunLaneTo(lane, end, inclusive);
  }
}

void Simulator::RunLanesParallel(SimTime end, bool inclusive) {
  {
    std::lock_guard<std::mutex> lock(pool_m_);
    pool_end_ = end;
    pool_inclusive_ = inclusive;
    pool_done_ = 0;
    next_lane_.store(0, std::memory_order_relaxed);
    ++pool_gen_;
  }
  pool_cv_.notify_all();
  ClaimLanes(end, inclusive);  // the calling thread is worker 0
  std::unique_lock<std::mutex> lock(pool_m_);
  done_cv_.wait(lock, [&] { return pool_done_ == static_cast<int>(workers_.size()); });
}

void Simulator::RunEpoch(SimTime end, bool inclusive) {
  const SimTime start = global_now_;
  // 1) Drain mailboxes: for each target lane, source lanes in index order, FIFO
  //    within a source. Arrival times clamp to the barrier (cross-lane granularity).
  uint64_t drained = 0;
  for (Lane& target : lanes_) {
    for (std::vector<Mail>& box : target.inbox) {
      for (Mail& mail : box) {
        Enqueue(target, std::max(mail.time, start), mail.kind, mail.sink,
                std::move(mail.payload), std::move(mail.fn));
        ++drained;
      }
      box.clear();
    }
  }
  if (drained > 0) {
    // Barrier-sequence hash: which barrier took delivery of how much cross-lane
    // traffic is part of the replay contract.
    MixFp(barrier_hash_, static_cast<uint64_t>(start));
    MixFp(barrier_hash_, drained);
  }
  // 2) Pre-extend shared lazily-built world state so lanes only read it.
  if (barrier_hook_) {
    barrier_hook_(end);
  }
  // 3) Worker lanes.
  if (threads_ <= 1) {
    for (int lane = 0; lane < num_lanes(); ++lane) {
      RunLaneTo(lane, end, inclusive);
    }
  } else {
    RunLanesParallel(end, inclusive);
  }
  // 4) Control lane: mutations and other serial work run at the closing barrier,
  //    with every worker idle and the global clock at `end`. An event scheduled for
  //    time T executes at the first barrier at-or-after T (never before it), but
  //    observes Now() == T — execution is barrier-batched, the logical clock is
  //    not. Deliveries it makes into worker lanes clamp forward to the barrier
  //    (see Push); control-to-control chains keep full time resolution.
  global_now_ = end;
  RunLaneTo(ControlIndex(), end, /*inclusive=*/true);
}

void Simulator::SetBarrierHook(std::function<void(SimTime)> hook) {
  barrier_hook_ = std::move(hook);
}

bool Simulator::Step() {
  if (!lane_mode_) {
    Lane& lane = lanes_[0];
    while (!lane.queue.empty()) {
      if (ExecuteOne(lane)) {
        return true;
      }
    }
    return false;
  }
  const SimTime next = NextEventTime();
  if (next < 0) {
    return false;
  }
  const SimTime target = std::max(next, global_now_);
  RunEpoch(GridEnd(target), /*inclusive=*/false);
  return true;
}

void Simulator::RunUntil(SimTime t) {
  if (!lane_mode_) {
    Lane& lane = lanes_[0];
    while (!lane.queue.empty()) {
      const QueueEntry& top = lane.queue.top();
      if (lane.pool[top.slot].gen != top.gen) {
        // Lazy-deleted (cancelled) entry. Dropping it here matters: a stale entry
        // at time <= t can front a live event beyond t, and deciding on the stale
        // top's time would execute that event past the bound (Step() runs the
        // first *live* event it finds, whatever its time).
        lane.queue.pop();
        continue;
      }
      if (top.time > t) {
        break;
      }
      ExecuteOne(lane);
    }
    if (lane.now < t) {
      lane.now = t;
    }
    return;
  }
  while (global_now_ <= t) {
    SimTime next = NextEventTime();
    if (next < 0) {
      global_now_ = t;
      return;
    }
    next = std::max(next, global_now_);
    if (next > t) {
      global_now_ = t;
      return;
    }
    // Skip empty grid cells: barriers only run where work (or mail) is waiting.
    const SimTime end = std::min(GridEnd(next), t);
    RunEpoch(end, /*inclusive=*/end == t);
    if (end == t) {
      return;
    }
  }
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

uint64_t Simulator::events_executed() const {
  uint64_t total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.executed;
  }
  return total;
}

size_t Simulator::events_pending() const {
  size_t total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.queue.size();
    for (const std::vector<Mail>& box : lane.inbox) {
      total += box.size();
    }
  }
  return total;
}

uint64_t Simulator::fingerprint() const {
  if (!lane_mode_) {
    return lanes_[0].fp;
  }
  // Order-independent fold: lanes execute concurrently, so the combined fingerprint
  // must not encode an inter-lane *ordering* — but each stream is bound to its lane
  // identity before summing, so swapping two lanes' entire event streams (a lane
  // misrouting bug) still changes the result. The barrier hash pins the cross-lane
  // delivery schedule.
  uint64_t total = barrier_hash_;
  uint64_t index = 0;
  for (const Lane& lane : lanes_) {
    uint64_t term = lane.fp;
    MixFp(term, index++);
    total += term * 0x9e3779b97f4a7c15ull;
  }
  return total;
}

SimTime Simulator::NextEventTime() const {
  SimTime best = -1;
  for (const Lane& lane : lanes_) {
    if (!lane.queue.empty()) {
      const SimTime t = lane.queue.top().time;
      if (best < 0 || t < best) {
        best = t;
      }
    }
    for (const std::vector<Mail>& box : lane.inbox) {
      for (const Mail& mail : box) {
        if (best < 0 || mail.time < best) {
          best = mail.time;
        }
      }
    }
  }
  return best;
}

uint64_t Simulator::RegisterSink(EventSink* sink) {
  PRESTO_CHECK(sink != nullptr);
  auto it = sink_ids_.find(sink);
  if (it != sink_ids_.end()) {
    return it->second;
  }
  const uint64_t id = sinks_.size();
  sink_ids_[sink] = id;
  sinks_.push_back(sink);
  return id;
}

namespace {

void WritePayload(ByteWriter& w, const EventPayload& p) {
  CkptWrite(w, p.a);
  CkptWrite(w, p.b);
  CkptWrite(w, p.c);
  CkptWrite(w, p.d);
  CkptWrite(w, p.e);
  CkptWrite(w, p.f);
  CkptWrite(w, p.bytes);
}

Status ReadPayload(ByteReader& r, EventPayload& p) {
  CKPT_READ(r, p.a);
  CKPT_READ(r, p.b);
  CKPT_READ(r, p.c);
  CKPT_READ(r, p.d);
  CKPT_READ(r, p.e);
  CKPT_READ(r, p.f);
  CKPT_READ(r, p.bytes);
  return OkStatus();
}

}  // namespace

Status Simulator::SaveState(ByteWriter& w) const {
  PRESTO_CHECK_MSG(CurrentLane() == kLaneControl,
                   "checkpoint only from control context");
  CkptWrite(w, lane_mode_);
  CkptWrite(w, static_cast<uint64_t>(lanes_.size()));
  CkptWrite(w, static_cast<uint64_t>(sinks_.size()));
  CkptWrite(w, epoch_);
  CkptWrite(w, epoch_cap_);
  CkptWrite(w, lookahead_);
  CkptWrite(w, epoch_anchor_);
  CkptWrite(w, global_now_);
  w.WriteU64(barrier_hash_);
  CkptWrite(w, any_scheduled_);
  for (size_t li = 0; li < lanes_.size(); ++li) {
    const Lane& lane = lanes_[li];
    CkptWrite(w, lane.now);
    CkptWrite(w, lane.next_seq);
    CkptWrite(w, lane.executed);
    w.WriteU64(lane.fp);
    // Pending queue events, ascending (time, seq) — copy-pop to iterate the heap.
    auto queue = lane.queue;
    std::vector<QueueEntry> live;
    live.reserve(queue.size());
    while (!queue.empty()) {
      const QueueEntry entry = queue.top();
      queue.pop();
      if (lane.pool[entry.slot].gen == entry.gen) {
        live.push_back(entry);
      }
    }
    CkptWrite(w, static_cast<uint64_t>(live.size()));
    for (const QueueEntry& entry : live) {
      const Event& event = lane.pool[entry.slot];
      if (event.kind == EventKind::kCallback) {
        return FailedPreconditionError(
            "checkpoint: pending kCallback closure in lane " + std::to_string(li) +
            " at t=" + std::to_string(entry.time) + " (typed events only)");
      }
      auto sid = sink_ids_.find(event.sink);
      if (sid == sink_ids_.end()) {
        return FailedPreconditionError("checkpoint: unregistered sink in lane " +
                                       std::to_string(li));
      }
      CkptWrite(w, entry.time);
      CkptWrite(w, entry.seq);
      CkptWrite(w, event.kind);
      CkptWrite(w, sid->second);
      WritePayload(w, event.payload);
    }
    CkptWrite(w, static_cast<uint64_t>(lane.inbox.size()));
    for (const std::vector<Mail>& box : lane.inbox) {
      CkptWrite(w, static_cast<uint64_t>(box.size()));
      for (const Mail& mail : box) {
        if (mail.kind == EventKind::kCallback) {
          return FailedPreconditionError(
              "checkpoint: pending kCallback closure in a mailbox of lane " +
              std::to_string(li));
        }
        auto sid = sink_ids_.find(mail.sink);
        if (sid == sink_ids_.end()) {
          return FailedPreconditionError(
              "checkpoint: unregistered mailbox sink in lane " + std::to_string(li));
        }
        CkptWrite(w, mail.time);
        CkptWrite(w, mail.kind);
        CkptWrite(w, sid->second);
        WritePayload(w, mail.payload);
      }
    }
  }
  return OkStatus();
}

Status Simulator::LoadState(ByteReader& r) {
  PRESTO_CHECK_MSG(CurrentLane() == kLaneControl, "restore only from control context");
  bool lane_mode = false;
  uint64_t lane_count = 0;
  uint64_t sink_count = 0;
  CKPT_READ(r, lane_mode);
  CKPT_READ(r, lane_count);
  CKPT_READ(r, sink_count);
  if (lane_mode != lane_mode_ || lane_count != lanes_.size()) {
    return FailedPreconditionError(
        "restore: lane configuration mismatch (checkpoint has " +
        std::to_string(lane_count) + " lanes, simulator has " +
        std::to_string(lanes_.size()) + ")");
  }
  if (sink_count != sinks_.size()) {
    return FailedPreconditionError(
        "restore: sink table mismatch (checkpoint has " + std::to_string(sink_count) +
        " sinks, simulator has " + std::to_string(sinks_.size()) +
        "; construction order must match the saving run)");
  }
  Duration epoch = 0;
  Duration epoch_cap = 0;
  CKPT_READ(r, epoch);
  CKPT_READ(r, epoch_cap);
  if (epoch_cap != epoch_cap_) {
    return FailedPreconditionError("restore: epoch grid mismatch");
  }
  epoch_ = epoch;
  CKPT_READ(r, lookahead_);
  CKPT_READ(r, epoch_anchor_);
  CKPT_READ(r, global_now_);
  auto barrier_hash = r.ReadU64();
  if (!barrier_hash.ok()) {
    return barrier_hash.status();
  }
  barrier_hash_ = *barrier_hash;
  CKPT_READ(r, any_scheduled_);
  // Restored events to announce once every lane's queues are rebuilt.
  struct Restored {
    int lane;
    SimTime time;
    EventKind kind;
    uint32_t slot;
  };
  std::vector<Restored> announce;
  for (size_t li = 0; li < lanes_.size(); ++li) {
    Lane& lane = lanes_[li];
    // Discard construction-time residue: the restoring run rebuilds queues from the
    // checkpoint; handle-holders re-capture via OnEventRestored below.
    lane.pool.clear();
    lane.free_slots.clear();
    lane.queue = std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later>();
    CKPT_READ(r, lane.now);
    CKPT_READ(r, lane.next_seq);
    CKPT_READ(r, lane.executed);
    auto fp = r.ReadU64();
    if (!fp.ok()) {
      return fp.status();
    }
    lane.fp = *fp;
    uint64_t pending = 0;
    CKPT_READ(r, pending);
    for (uint64_t i = 0; i < pending; ++i) {
      SimTime time = 0;
      uint64_t seq = 0;
      EventKind kind = EventKind::kCallback;
      uint64_t sink_id = 0;
      CKPT_READ(r, time);
      CKPT_READ(r, seq);
      CKPT_READ(r, kind);
      CKPT_READ(r, sink_id);
      if (kind == EventKind::kCallback || sink_id >= sinks_.size()) {
        return DataLossError("restore: invalid event record in lane " +
                             std::to_string(li));
      }
      const uint32_t slot = static_cast<uint32_t>(lane.pool.size());
      lane.pool.emplace_back();
      Event& event = lane.pool[slot];
      event.kind = kind;
      event.sink = sinks_[sink_id];
      PRESTO_RETURN_IF_ERROR(ReadPayload(r, event.payload));
      // Original (time, seq): same-time tie-break order is part of the replay
      // contract, so events re-enter with the seqs they were scheduled under.
      lane.queue.push(QueueEntry{time, seq, slot, event.gen});
      announce.push_back(Restored{static_cast<int>(li), time, kind, slot});
    }
    uint64_t box_count = 0;
    CKPT_READ(r, box_count);
    if (box_count != lane.inbox.size()) {
      return DataLossError("restore: mailbox table mismatch in lane " +
                           std::to_string(li));
    }
    for (std::vector<Mail>& box : lane.inbox) {
      box.clear();
      uint64_t mail_count = 0;
      CKPT_READ(r, mail_count);
      for (uint64_t i = 0; i < mail_count; ++i) {
        Mail mail{};
        uint64_t sink_id = 0;
        CKPT_READ(r, mail.time);
        CKPT_READ(r, mail.kind);
        CKPT_READ(r, sink_id);
        if (mail.kind == EventKind::kCallback || sink_id >= sinks_.size()) {
          return DataLossError("restore: invalid mailbox record in lane " +
                               std::to_string(li));
        }
        mail.sink = sinks_[sink_id];
        PRESTO_RETURN_IF_ERROR(ReadPayload(r, mail.payload));
        box.push_back(std::move(mail));
      }
    }
  }
  for (const Restored& item : announce) {
    Lane& lane = lanes_[static_cast<size_t>(item.lane)];
    Event& event = lane.pool[item.slot];
    const int external_lane = lane_mode_ && item.lane != ControlIndex()
                                  ? item.lane
                                  : kLaneControl;
    event.sink->OnEventRestored(item.time, item.kind, event.payload,
                                EventHandle(this, item.lane, item.slot, event.gen),
                                external_lane);
  }
  return OkStatus();
}

size_t Simulator::PoolSlotsForTest(int lane) const {
  return lanes_[static_cast<size_t>(ResolveLane(lane))].pool.size();
}

size_t Simulator::FreeSlotsForTest(int lane) const {
  return lanes_[static_cast<size_t>(ResolveLane(lane))].free_slots.size();
}

}  // namespace presto
