#include "src/sim/simulator.h"

#include "src/util/assert.h"

namespace presto {

void EventHandle::Cancel() {
  if (cancelled_ != nullptr) {
    *cancelled_ = true;
  }
}

EventHandle Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  PRESTO_CHECK_MSG(t >= now_, "cannot schedule into the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{t, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

EventHandle Simulator::ScheduleIn(Duration delay, std::function<void()> fn) {
  PRESTO_CHECK_MSG(delay >= 0, "negative delay");
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast, standard pop-move idiom.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (*event.cancelled) {
      continue;
    }
    now_ = event.time;
    ++events_executed_;
    auto mix = [this](uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        fingerprint_ = (fingerprint_ ^ ((v >> (8 * i)) & 0xff)) * 0x100000001b3ull;
      }
    };
    mix(static_cast<uint64_t>(event.time));
    mix(event.seq);
    event.fn();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

}  // namespace presto
