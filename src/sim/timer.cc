#include "src/sim/timer.h"

#include <algorithm>
#include <utility>

#include "src/util/assert.h"
#include "src/util/ckpt.h"

namespace presto {

PeriodicTimer::PeriodicTimer(Simulator* sim, std::function<void()> callback)
    : sim_(sim), callback_(std::move(callback)) {
  PRESTO_CHECK(sim_ != nullptr);
  PRESTO_CHECK(callback_ != nullptr);
  sim_->RegisterSink(this);
}

void PeriodicTimer::Start(Duration period, Duration initial_delay) {
  PRESTO_CHECK_MSG(period > 0, "timer period must be positive");
  Stop();
  period_ = period;
  running_ = true;
  ScheduleNext(initial_delay >= 0 ? initial_delay : period);
}

void PeriodicTimer::Stop() {
  pending_.Cancel();
  running_ = false;
}

void PeriodicTimer::SetPeriod(Duration period) {
  PRESTO_CHECK_MSG(period > 0, "timer period must be positive");
  period_ = period;
  if (running_) {
    pending_.Cancel();
    ScheduleNext(period_);
  }
}

void PeriodicTimer::Rebind(int new_lane) {
  if (lane_ == new_lane) {
    return;
  }
  lane_ = new_lane;
  if (!running_) {
    return;
  }
  // Preserve the absolute fire time across the move: duty-cycle phase must not
  // shift just because the owner changed lanes (clamp covers a fire that was due
  // exactly at this barrier).
  pending_.Cancel();
  const SimTime now = sim_->Now();
  pending_ = sim_->ScheduleEventAt(std::max(next_fire_at_, now), EventKind::kTimer,
                                   this, EventPayload{}, lane_);
  next_fire_at_ = std::max(next_fire_at_, now);
}

void PeriodicTimer::OnSimEvent(EventKind kind, EventPayload& payload) {
  (void)kind;
  (void)payload;
  Fire();
}

void PeriodicTimer::Fire() {
  if (!running_) {
    return;
  }
  ScheduleNext(period_);
  callback_();
}

void PeriodicTimer::ScheduleNext(Duration delay) {
  next_fire_at_ = sim_->Now() + delay;
  pending_ = sim_->ScheduleEventAt(next_fire_at_, EventKind::kTimer, this,
                                   EventPayload{}, lane_);
}

void PeriodicTimer::SaveState(ByteWriter& w) const {
  CkptWrite(w, period_);
  CkptWrite(w, next_fire_at_);
  CkptWrite(w, lane_);
  CkptWrite(w, running_);
}

Status PeriodicTimer::LoadState(ByteReader& r) {
  pending_ = EventHandle();  // stale pre-restore handle: drop without cancelling
  CKPT_READ(r, period_);
  CKPT_READ(r, next_fire_at_);
  CKPT_READ(r, lane_);
  CKPT_READ(r, running_);
  return OkStatus();
}

void PeriodicTimer::OnEventRestored(SimTime t, EventKind kind,
                                    const EventPayload& payload,
                                    const EventHandle& handle, int lane) {
  (void)kind;
  (void)payload;
  next_fire_at_ = t;
  pending_ = handle;
  lane_ = lane;
}

}  // namespace presto
