#include "src/sim/timer.h"

#include <utility>

#include "src/util/assert.h"

namespace presto {

PeriodicTimer::PeriodicTimer(Simulator* sim, std::function<void()> callback)
    : sim_(sim), callback_(std::move(callback)) {
  PRESTO_CHECK(sim_ != nullptr);
  PRESTO_CHECK(callback_ != nullptr);
}

void PeriodicTimer::Start(Duration period, Duration initial_delay) {
  PRESTO_CHECK_MSG(period > 0, "timer period must be positive");
  Stop();
  period_ = period;
  running_ = true;
  ScheduleNext(initial_delay >= 0 ? initial_delay : period);
}

void PeriodicTimer::Stop() {
  pending_.Cancel();
  running_ = false;
}

void PeriodicTimer::SetPeriod(Duration period) {
  PRESTO_CHECK_MSG(period > 0, "timer period must be positive");
  period_ = period;
  if (running_) {
    pending_.Cancel();
    ScheduleNext(period_);
  }
}

void PeriodicTimer::OnSimEvent(EventKind kind, EventPayload& payload) {
  (void)kind;
  (void)payload;
  Fire();
}

void PeriodicTimer::Fire() {
  if (!running_) {
    return;
  }
  ScheduleNext(period_);
  callback_();
}

void PeriodicTimer::ScheduleNext(Duration delay) {
  pending_ = sim_->ScheduleEventAt(sim_->Now() + delay, EventKind::kTimer, this,
                                   EventPayload{}, lane_);
}

}  // namespace presto
