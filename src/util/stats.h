// Streaming and batch statistics used across the simulator, benches, and the
// prediction engine's residual tracking.

#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace presto {

// Numerically stable streaming moments (Welford). O(1) space; cannot produce quantiles
// (use SampleSet for that).
class RunningStats {
 public:
  void Add(double x);

  // Merges another accumulator into this one (parallel Welford combination).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // population variance; 0 for n < 2
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Retains every sample; supports exact quantiles. Fine for the sample counts PRESTO
// benches produce (<= millions); not for unbounded streams.
class SampleSet {
 public:
  void Add(double x);
  void Reserve(size_t n) { samples_.reserve(n); }

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  // Exact q-quantile with linear interpolation, q in [0, 1]. Sorts lazily.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  int64_t count() const { return count_; }
  int64_t BucketCount(int i) const { return counts_[i]; }
  int buckets() const { return static_cast<int>(counts_.size()); }
  double BucketLow(int i) const { return lo_ + width_ * i; }

  // One bar per line, for quick terminal inspection.
  std::string ToString(int max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
};

// Root-mean-square error between two equal-length series.
double Rmse(const std::vector<double>& a, const std::vector<double>& b);

// Mean absolute error between two equal-length series.
double MeanAbsError(const std::vector<double>& a, const std::vector<double>& b);

// Largest absolute difference between two equal-length series.
double MaxAbsError(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace presto

#endif  // SRC_UTIL_STATS_H_
