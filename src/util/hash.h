// The byte-wise FNV-1a fold every replay digest in the tree uses: the simulator's
// per-lane fingerprints, the federation's barrier hash, and the query driver's
// latency-histogram digest. One definition, so the replay-hash scheme can never
// silently fork between layers.

#ifndef SRC_UTIL_HASH_H_
#define SRC_UTIL_HASH_H_

#include <cstdint>

namespace presto {

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

// Folds the eight bytes of `v` (little-endian order) into the rolling hash `fp`.
inline void FnvMix(uint64_t& fp, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    fp = (fp ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
  }
}

}  // namespace presto

#endif  // SRC_UTIL_HASH_H_
