// Minimal leveled logging. Benches and long simulations run at kWarn; examples turn on
// kInfo to narrate system behaviour. printf-style because the call sites are simple and
// we avoid iostream cost in hot paths.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdarg>

namespace presto {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Sets the global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Core sink; prefer the PLOG_* macros which skip argument evaluation when disabled.
void LogMessage(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2,
                                                                            3)));

}  // namespace presto

#define PLOG_DEBUG(...)                                               \
  do {                                                                \
    if (::presto::GetLogLevel() <= ::presto::LogLevel::kDebug) {      \
      ::presto::LogMessage(::presto::LogLevel::kDebug, __VA_ARGS__);  \
    }                                                                 \
  } while (0)

#define PLOG_INFO(...)                                                \
  do {                                                                \
    if (::presto::GetLogLevel() <= ::presto::LogLevel::kInfo) {       \
      ::presto::LogMessage(::presto::LogLevel::kInfo, __VA_ARGS__);   \
    }                                                                 \
  } while (0)

#define PLOG_WARN(...)                                                \
  do {                                                                \
    if (::presto::GetLogLevel() <= ::presto::LogLevel::kWarn) {       \
      ::presto::LogMessage(::presto::LogLevel::kWarn, __VA_ARGS__);   \
    }                                                                 \
  } while (0)

#define PLOG_ERROR(...)                                               \
  do {                                                                \
    if (::presto::GetLogLevel() <= ::presto::LogLevel::kError) {      \
      ::presto::LogMessage(::presto::LogLevel::kError, __VA_ARGS__);  \
    }                                                                 \
  } while (0)

#endif  // SRC_UTIL_LOGGING_H_
