#include "src/util/rng.h"

#include <cmath>

#include "src/util/assert.h"

namespace presto {
namespace {

constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;

}  // namespace

Pcg32::Pcg32(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Pcg32::NextU32() {
  const uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  const uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  const uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Pcg32::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Pcg32::NextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Pcg32::UniformInt(int64_t lo, int64_t hi) {
  PRESTO_DCHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = NextU64();
  while (value >= limit) {
    value = NextU64();
  }
  return lo + static_cast<int64_t>(value % range);
}

double Pcg32::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Pcg32::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Pcg32::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Pcg32::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

double Pcg32::Exponential(double rate) {
  PRESTO_DCHECK(rate > 0.0);
  return -std::log(1.0 - NextDouble()) / rate;
}

int64_t Pcg32::Poisson(double mean) {
  PRESTO_DCHECK(mean >= 0.0);
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double threshold = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > threshold);
    return k - 1;
  }
  // Gaussian approximation, clamped at zero.
  const double value = Gaussian(mean, std::sqrt(mean));
  return value < 0.0 ? 0 : static_cast<int64_t>(std::llround(value));
}

Pcg32 Pcg32::Split() {
  return Pcg32(NextU64(), NextU64() >> 1);
}

Pcg32::State Pcg32::SaveState() const {
  State s;
  s.state = state_;
  s.inc = inc_;
  s.has_cached_gaussian = has_cached_gaussian_;
  s.cached_gaussian = cached_gaussian_;
  return s;
}

void Pcg32::LoadState(const State& s) {
  state_ = s.state;
  inc_ = s.inc;
  has_cached_gaussian_ = s.has_cached_gaussian;
  cached_gaussian_ = s.cached_gaussian;
}

}  // namespace presto
