// Simulated time.
//
// All PRESTO components express time as a SimTime: microseconds since the start of the
// simulation. Sensor-local (drifting) clocks are modeled separately in index/time_sync;
// everything else in the system operates on true simulation time.

#ifndef SRC_UTIL_SIM_TIME_H_
#define SRC_UTIL_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace presto {

// Absolute simulated time in microseconds. 2^63 us ~ 292k years; overflow is not
// a concern.
using SimTime = int64_t;

// A span of simulated time in microseconds.
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

constexpr Duration Micros(double us) { return static_cast<Duration>(us); }
constexpr Duration Millis(double ms) { return static_cast<Duration>(ms * kMillisecond); }
constexpr Duration Seconds(double s) { return static_cast<Duration>(s * kSecond); }
constexpr Duration Minutes(double m) { return static_cast<Duration>(m * kMinute); }
constexpr Duration Hours(double h) { return static_cast<Duration>(h * kHour); }
constexpr Duration Days(double d) { return static_cast<Duration>(d * kDay); }

constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToMinutes(Duration d) { return static_cast<double>(d) / kMinute; }
constexpr double ToHours(Duration d) { return static_cast<double>(d) / kHour; }
constexpr double ToDays(Duration d) { return static_cast<double>(d) / kDay; }

// Renders a time as "Nd HH:MM:SS.mmm" for logs and tables.
std::string FormatTime(SimTime t);

// Renders a duration compactly with an adaptive unit ("350ms", "16.5min", "1.2d").
std::string FormatDuration(Duration d);

}  // namespace presto

#endif  // SRC_UTIL_SIM_TIME_H_
