// Fatal invariant checking for PRESTO.
//
// PRESTO is exception-free (Google/Fuchsia style); broken invariants abort the process
// with a source location instead of unwinding. Expected, recoverable failures use
// presto::Status / presto::Result<T> (see util/result.h) rather than these macros.

#ifndef SRC_UTIL_ASSERT_H_
#define SRC_UTIL_ASSERT_H_

namespace presto {

// Prints a diagnostic to stderr and aborts. Used by the PRESTO_CHECK family; callers
// normally never invoke this directly.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* msg);

}  // namespace presto

// Always-on invariant check. `expr` must be side-effect free in spirit (it is always
// evaluated, but readers assume checks are removable).
#define PRESTO_CHECK(expr)                                            \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::presto::CheckFailed(__FILE__, __LINE__, #expr, "");           \
    }                                                                 \
  } while (0)

// Always-on invariant check with an explanatory message (a string literal).
#define PRESTO_CHECK_MSG(expr, msg)                                   \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::presto::CheckFailed(__FILE__, __LINE__, #expr, (msg));        \
    }                                                                 \
  } while (0)

// Debug-only check; compiled out under NDEBUG. Use for hot paths.
#ifdef NDEBUG
#define PRESTO_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define PRESTO_DCHECK(expr) PRESTO_CHECK(expr)
#endif

#endif  // SRC_UTIL_ASSERT_H_
