#include "src/util/ckpt.h"

#include <cstdio>

namespace presto {
namespace {

constexpr uint32_t kSnapshotMagic = 0x314b4350;  // "PCK1" little-endian
constexpr uint32_t kDiffMagic = 0x444b4350;      // "PCKD" little-endian

}  // namespace

void Checkpoint::Add(const std::string& name, std::vector<uint8_t> payload) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    sections_[it->second].payload = std::move(payload);
    return;
  }
  index_[name] = sections_.size();
  sections_.push_back(Section{name, std::move(payload)});
}

const std::vector<uint8_t>* Checkpoint::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return nullptr;
  }
  return &sections_[it->second].payload;
}

uint64_t Checkpoint::Digest() const {
  uint64_t fp = kFnvOffsetBasis;
  for (const Section& s : sections_) {
    for (const char c : s.name) {
      fp = (fp ^ static_cast<uint8_t>(c)) * kFnvPrime;
    }
    FnvMix(fp, CkptChecksum(span<const uint8_t>(s.payload)));
  }
  return fp;
}

std::vector<uint8_t> Checkpoint::Encode() const {
  ByteWriter w;
  w.WriteU32(kSnapshotMagic);
  w.WriteU32(kVersion);
  w.WriteVarU64(sections_.size());
  for (const Section& s : sections_) {
    w.WriteString(s.name);
    w.WriteBytes(span<const uint8_t>(s.payload));
    w.WriteU64(CkptChecksum(span<const uint8_t>(s.payload)));
  }
  return w.TakeBuffer();
}

Result<Checkpoint> Checkpoint::Decode(span<const uint8_t> data) {
  ByteReader r(data);
  auto magic = r.ReadU32();
  if (!magic.ok() || *magic != kSnapshotMagic) {
    return DataLossError("ckpt: bad snapshot magic");
  }
  auto version = r.ReadU32();
  if (!version.ok()) {
    return version.status();
  }
  if (*version != kVersion) {
    return InvalidArgumentError("ckpt: unsupported version " +
                                std::to_string(*version));
  }
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  Checkpoint out;
  for (uint64_t i = 0; i < *count; ++i) {
    auto name = r.ReadString();
    if (!name.ok()) {
      return name.status();
    }
    auto payload = r.ReadBytes();
    if (!payload.ok()) {
      return payload.status();
    }
    auto checksum = r.ReadU64();
    if (!checksum.ok()) {
      return checksum.status();
    }
    if (CkptChecksum(span<const uint8_t>(*payload)) != *checksum) {
      return DataLossError("ckpt: checksum mismatch in section '" + *name + "'");
    }
    out.Add(*name, std::move(*payload));
  }
  return out;
}

std::vector<uint8_t> Checkpoint::EncodeDiffFrom(const Checkpoint& base) const {
  ByteWriter w;
  w.WriteU32(kDiffMagic);
  w.WriteU32(kVersion);
  w.WriteU64(base.Digest());
  std::vector<std::string> removed;
  for (const Section& s : base.sections_) {
    if (Find(s.name) == nullptr) {
      removed.push_back(s.name);
    }
  }
  w.WriteVarU64(removed.size());
  for (const std::string& name : removed) {
    w.WriteString(name);
  }
  std::vector<const Section*> changed;
  for (const Section& s : sections_) {
    const std::vector<uint8_t>* old = base.Find(s.name);
    if (old == nullptr || *old != s.payload) {
      changed.push_back(&s);
    }
  }
  w.WriteVarU64(changed.size());
  for (const Section* s : changed) {
    w.WriteString(s->name);
    w.WriteBytes(span<const uint8_t>(s->payload));
    w.WriteU64(CkptChecksum(span<const uint8_t>(s->payload)));
  }
  return w.TakeBuffer();
}

Result<Checkpoint> Checkpoint::ApplyDiff(const Checkpoint& base,
                                         span<const uint8_t> diff) {
  ByteReader r(diff);
  auto magic = r.ReadU32();
  if (!magic.ok() || *magic != kDiffMagic) {
    return DataLossError("ckpt: bad diff magic");
  }
  auto version = r.ReadU32();
  if (!version.ok()) {
    return version.status();
  }
  if (*version != kVersion) {
    return InvalidArgumentError("ckpt: unsupported diff version " +
                                std::to_string(*version));
  }
  auto base_digest = r.ReadU64();
  if (!base_digest.ok()) {
    return base_digest.status();
  }
  if (*base_digest != base.Digest()) {
    return FailedPreconditionError("ckpt: diff base digest mismatch");
  }
  auto removed_count = r.ReadVarU64();
  if (!removed_count.ok()) {
    return removed_count.status();
  }
  std::map<std::string, bool> removed;
  for (uint64_t i = 0; i < *removed_count; ++i) {
    auto name = r.ReadString();
    if (!name.ok()) {
      return name.status();
    }
    removed[*name] = true;
  }
  Checkpoint out;
  for (const Section& s : base.sections_) {
    if (removed.count(s.name) == 0) {
      out.Add(s.name, s.payload);
    }
  }
  auto changed_count = r.ReadVarU64();
  if (!changed_count.ok()) {
    return changed_count.status();
  }
  for (uint64_t i = 0; i < *changed_count; ++i) {
    auto name = r.ReadString();
    if (!name.ok()) {
      return name.status();
    }
    auto payload = r.ReadBytes();
    if (!payload.ok()) {
      return payload.status();
    }
    auto checksum = r.ReadU64();
    if (!checksum.ok()) {
      return checksum.status();
    }
    if (CkptChecksum(span<const uint8_t>(*payload)) != *checksum) {
      return DataLossError("ckpt: checksum mismatch in diff section '" + *name + "'");
    }
    out.Add(*name, std::move(*payload));
  }
  return out;
}

std::vector<std::string> Checkpoint::DivergentSections(const Checkpoint& other) const {
  std::vector<std::string> out;
  for (const Section& s : sections_) {
    const std::vector<uint8_t>* theirs = other.Find(s.name);
    if (theirs == nullptr || *theirs != s.payload) {
      out.push_back(s.name);
    }
  }
  for (const Section& s : other.sections_) {
    if (Find(s.name) == nullptr) {
      out.push_back(s.name);
    }
  }
  return out;
}

Status Checkpoint::WriteFile(const std::string& path) const {
  const std::vector<uint8_t> bytes = Encode();
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return UnavailableError("ckpt: cannot open '" + path + "' for writing");
  }
  const size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    return DataLossError("ckpt: short write to '" + path + "'");
  }
  return OkStatus();
}

Result<Checkpoint> Checkpoint::ReadFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return UnavailableError("ckpt: cannot open '" + path + "'");
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[65536];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return Decode(span<const uint8_t>(bytes));
}

}  // namespace presto
