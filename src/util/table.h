// Aligned text tables and CSV output. Every bench prints its figure/table through this
// so the regenerated paper artifacts are consistent and machine-parsable.

#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace presto {

class TextTable {
 public:
  // Column headers; fixes the column count for subsequent rows.
  void SetHeader(std::vector<std::string> header);

  // Adds a row of preformatted cells. Must match the header width.
  void AddRow(std::vector<std::string> cells);

  // Cell formatting helpers.
  static std::string Num(double v, int precision = 3);
  static std::string Int(long long v);

  // Renders with aligned columns and a rule under the header.
  std::string ToString() const;
  void Print(std::FILE* out = stdout) const;

  // Comma-separated rendering (header + rows), for downstream plotting.
  std::string ToCsv() const;

  // Writes ToCsv() to `path`; best-effort (logs on failure).
  void WriteCsvFile(const std::string& path) const;

  // Read access for downstream emitters (bench JSON reports).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace presto

#endif  // SRC_UTIL_TABLE_H_
