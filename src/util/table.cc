#include "src/util/table.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/logging.h"

namespace presto {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> cells) {
  PRESTO_CHECK_MSG(header_.empty() || cells.size() == header_.size(),
                   "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::ToString() const {
  // Column widths from header and all rows.
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    widen(row);
  }

  auto render = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        line += "  ";
      }
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!header_.empty()) {
    out += render(header_);
    size_t rule = 0;
    for (size_t i = 0; i < widths.size(); ++i) {
      rule += widths[i] + (i > 0 ? 2 : 0);
    }
    out.append(rule, '-');
    out += '\n';
  }
  for (const auto& row : rows_) {
    out += render(row);
  }
  return out;
}

void TextTable::Print(std::FILE* out) const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), out);
}

std::string TextTable::ToCsv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        line += ',';
      }
      line += row[i];
    }
    line += '\n';
    return line;
  };
  std::string out;
  if (!header_.empty()) {
    out += render(header_);
  }
  for (const auto& row : rows_) {
    out += render(row);
  }
  return out;
}

void TextTable::WriteCsvFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PLOG_WARN("TextTable: cannot write %s", path.c_str());
    return;
  }
  const std::string s = ToCsv();
  std::fwrite(s.data(), 1, s.size(), f);
  std::fclose(f);
}

}  // namespace presto
