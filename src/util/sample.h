// The ubiquitous time-series value types. Kept in util because every layer — flash
// archive, models, proxy cache, queries — speaks (timestamp, value) pairs.

#ifndef SRC_UTIL_SAMPLE_H_
#define SRC_UTIL_SAMPLE_H_

#include <vector>

#include "src/util/sim_time.h"

namespace presto {

// One scalar observation at a point in simulated time.
struct Sample {
  SimTime t = 0;
  double value = 0.0;

  friend bool operator==(const Sample& a, const Sample& b) {
    return a.t == b.t && a.value == b.value;
  }
};

// Half-open time interval [start, end).
struct TimeInterval {
  SimTime start = 0;
  SimTime end = 0;

  Duration Length() const { return end - start; }
  bool Contains(SimTime t) const { return t >= start && t < end; }
  bool Overlaps(const TimeInterval& o) const { return start < o.end && o.start < end; }

  friend bool operator==(const TimeInterval& a, const TimeInterval& b) {
    return a.start == b.start && a.end == b.end;
  }
};

// Extracts the value column (models and codecs operate on plain vectors).
inline std::vector<double> ValuesOf(const std::vector<Sample>& samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const Sample& s : samples) {
    out.push_back(s.value);
  }
  return out;
}

}  // namespace presto

#endif  // SRC_UTIL_SAMPLE_H_
