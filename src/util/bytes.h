// Byte-level serialization.
//
// Everything that crosses a simulated radio link or is written to simulated flash is
// serialized through ByteWriter/ByteReader so that *sizes are real*: the energy model
// charges for exactly the bytes these encoders produce.

#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/span.h"

namespace presto {

// Appends little-endian primitive encodings to a growable buffer.
class ByteWriter {
 public:
  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteF32(float v);
  void WriteF64(double v);

  // LEB128 variable-length unsigned integer (1 byte for < 128, etc.).
  void WriteVarU64(uint64_t v);
  // Zigzag-encoded signed varint; small magnitudes of either sign stay short.
  void WriteVarI64(int64_t v);

  // Length-prefixed (varint) raw bytes / string.
  void WriteBytes(span<const uint8_t> bytes);
  void WriteString(const std::string& s);

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

// Bounds-checked reader over a byte span. All reads return a Result; a short buffer is
// an error, never undefined behaviour. The span must outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<uint64_t> ReadVarU64();
  Result<int64_t> ReadVarI64();
  Result<std::vector<uint8_t>> ReadBytes();
  Result<std::string> ReadString();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Need(size_t n) const { return remaining() >= n; }

  span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace presto

#endif  // SRC_UTIL_BYTES_H_
