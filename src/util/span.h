// Minimal C++17 stand-in for span (the repo builds as C++17): a non-owning
// view over a contiguous sequence. Covers the subset PRESTO uses — construction
// from pointer+size / vector / array, element access, iteration, and subspan.

#ifndef SRC_UTIL_SPAN_H_
#define SRC_UTIL_SPAN_H_

#include <array>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace presto {

template <typename T>
class span {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;
  using iterator = T*;

  constexpr span() noexcept = default;
  constexpr span(T* data, size_t size) noexcept : data_(data), size_(size) {}
  template <size_t N>
  constexpr span(T (&arr)[N]) noexcept : data_(arr), size_(N) {}
  template <size_t N>
  constexpr span(std::array<value_type, N>& arr) noexcept : data_(arr.data()), size_(N) {}
  template <size_t N>
  constexpr span(const std::array<value_type, N>& arr) noexcept
      : data_(arr.data()), size_(N) {}
  span(std::vector<value_type>& v) noexcept : data_(v.data()), size_(v.size()) {}
  template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
  span(const std::vector<value_type>& v) noexcept : data_(v.data()), size_(v.size()) {}
  // const-view of a mutable span.
  template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
  constexpr span(span<value_type> other) noexcept
      : data_(other.data()), size_(other.size()) {}

  constexpr T* data() const noexcept { return data_; }
  constexpr size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }
  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }
  constexpr T* begin() const noexcept { return data_; }
  constexpr T* end() const noexcept { return data_ + size_; }

  constexpr span subspan(size_t offset) const {
    return span(data_ + offset, size_ - offset);
  }
  constexpr span subspan(size_t offset, size_t count) const {
    return span(data_ + offset, count);
  }
  constexpr span first(size_t count) const { return span(data_, count); }
  constexpr span last(size_t count) const { return span(data_ + size_ - count, count); }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace presto

#endif  // SRC_UTIL_SPAN_H_
