#include "src/util/assert.h"

#include <cstdio>
#include <cstdlib>

namespace presto {

void CheckFailed(const char* file, int line, const char* expr, const char* msg) {
  if (msg != nullptr && msg[0] != '\0') {
    std::fprintf(stderr, "PRESTO_CHECK failed at %s:%d: %s (%s)\n", file, line, expr,
                 msg);
  } else {
    std::fprintf(stderr, "PRESTO_CHECK failed at %s:%d: %s\n", file, line, expr);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace presto
