// Deterministic pseudo-random number generation.
//
// Every source of randomness in PRESTO (workload generators, link loss, clock jitter,
// query arrivals) draws from an explicitly seeded Pcg32 stream so simulations replay
// bit-identically. Never use std::rand or unseeded std::mt19937 in this codebase.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace presto {

// PCG-XSH-RR 32-bit generator (O'Neill 2014): small state, good statistical quality,
// trivially seedable into independent streams.
class Pcg32 {
 public:
  // `stream` selects one of 2^63 independent sequences for the same seed; give each
  // stochastic component its own stream id so adding a component never perturbs others.
  explicit Pcg32(uint64_t seed, uint64_t stream = 0);

  // Uniform 32-bit value.
  uint32_t NextU32();

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive, unbiased via rejection). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller (one value cached).
  double Gaussian();

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  // Poisson with the given mean; Knuth's method below 30, Gaussian approximation above.
  int64_t Poisson(double mean);

  // A fresh generator carved from this one — convenient for handing each simulated node
  // an independent stream.
  Pcg32 Split();

  // Checkpoint support: the complete generator state, including the Box-Muller cache
  // (dropping it would shift every subsequent Gaussian draw by one).
  struct State {
    uint64_t state = 0;
    uint64_t inc = 0;
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };
  State SaveState() const;
  void LoadState(const State& s);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace presto

#endif  // SRC_UTIL_RNG_H_
