#include "src/util/logging.h"

#include <cstdio>

namespace presto {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* fmt, ...) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace presto
