#include "src/util/sim_time.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace presto {

std::string FormatTime(SimTime t) {
  const bool negative = t < 0;
  if (negative) {
    t = -t;
  }
  const int64_t days = t / kDay;
  const int64_t hours = (t % kDay) / kHour;
  const int64_t minutes = (t % kHour) / kMinute;
  const int64_t seconds = (t % kMinute) / kSecond;
  const int64_t millis = (t % kSecond) / kMillisecond;
  char buf[64];
  std::snprintf(buf, sizeof(buf),
                "%s%" PRId64 "d %02" PRId64 ":%02" PRId64 ":%02" PRId64 ".%03" PRId64,
                negative ? "-" : "", days, hours, minutes, seconds, millis);
  return buf;
}

std::string FormatDuration(Duration d) {
  const double abs = std::abs(static_cast<double>(d));
  char buf[64];
  if (abs < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "us", d);
  } else if (abs < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3gms", ToMillis(d));
  } else if (abs < kMinute) {
    std::snprintf(buf, sizeof(buf), "%.3gs", ToSeconds(d));
  } else if (abs < kHour) {
    std::snprintf(buf, sizeof(buf), "%.3gmin", ToMinutes(d));
  } else if (abs < kDay) {
    std::snprintf(buf, sizeof(buf), "%.3gh", ToHours(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gd", ToDays(d));
  }
  return buf;
}

}  // namespace presto
