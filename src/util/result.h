// Error handling primitives: Status and Result<T>.
//
// PRESTO never throws across API boundaries. Operations that can fail in expected ways
// (a cache miss, an exhausted flash device, an unreachable sensor) return a Status or a
// Result<T>; programming errors abort via PRESTO_CHECK.

#ifndef SRC_UTIL_RESULT_H_
#define SRC_UTIL_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/assert.h"

namespace presto {

// Canonical error space, modeled on absl::StatusCode. Keep the set small: a code should
// tell the caller *what to do*, not describe the failure (the message does that).
enum class StatusCode {
  kOk = 0,
  // The requested datum does not exist (e.g. a time range never archived).
  kNotFound,
  kInvalidArgument,     // caller passed something malformed
  kResourceExhausted,   // out of storage / queue space / energy budget
  kUnavailable,         // transient: node asleep, link down, proxy failed over
  kDeadlineExceeded,    // latency bound could not be met
  kFailedPrecondition,  // object not in the right state (e.g. unmounted store)
  kOutOfRange,          // index/time outside the valid domain
  kDataLoss,            // archived data was aged out or corrupted beyond recovery
  kInternal,            // invariant violation that was recoverable enough to report
};

// Human-readable name of a status code ("kOk" -> "OK", etc.).
const char* StatusCodeName(StatusCode code);

// A cheap value type describing the outcome of an operation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "kNotFound: no archive segment covers [t1,t2)".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors, mirroring absl.
Status OkStatus();
Status NotFoundError(std::string message);
Status InvalidArgumentError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);

// Result<T> carries either a value or a non-OK Status. Accessing the value of a failed
// Result is a fatal error, so call sites either check ok() or propagate.
template <typename T>
class Result {
 public:
  // Implicit from value and from Status so `return value;` / `return NotFoundError(...)`
  // both work, as with absl::StatusOr.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    PRESTO_CHECK_MSG(!status_.ok(), "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PRESTO_CHECK_MSG(ok(), "value() called on failed Result");
    return *value_;
  }
  T& value() & {
    PRESTO_CHECK_MSG(ok(), "value() called on failed Result");
    return *value_;
  }
  T&& value() && {
    PRESTO_CHECK_MSG(ok(), "value() called on failed Result");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when the operation failed.
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // kOk iff value_ present
};

}  // namespace presto

// Propagates a non-OK status from an expression, absl-style.
#define PRESTO_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::presto::Status status_macro_ = (expr);  \
    if (!status_macro_.ok()) {                \
      return status_macro_;                   \
    }                                         \
  } while (0)

#endif  // SRC_UTIL_RESULT_H_
