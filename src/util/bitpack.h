// Bit-granular packing, used by the wavelet codec to store quantized coefficients in
// exactly the number of bits the quantizer chose. Header-only.

#ifndef SRC_UTIL_BITPACK_H_
#define SRC_UTIL_BITPACK_H_

#include <cstdint>
#include <vector>

#include "src/util/assert.h"

namespace presto {

// Appends values LSB-first into a packed byte vector.
class BitWriter {
 public:
  // Writes the low `bits` bits of `value`. bits in [0, 64].
  void WriteBits(uint64_t value, int bits) {
    PRESTO_DCHECK(bits >= 0 && bits <= 64);
    for (int i = 0; i < bits; ++i) {
      if (bit_pos_ == 0) {
        bytes_.push_back(0);
      }
      if ((value >> i) & 1) {
        bytes_.back() |= static_cast<uint8_t>(1u << bit_pos_);
      }
      bit_pos_ = (bit_pos_ + 1) & 7;
    }
  }

  // Unary-coded non-negative integer (n ones then a zero); cheap for tiny values.
  void WriteUnary(int n) {
    PRESTO_DCHECK(n >= 0);
    for (int i = 0; i < n; ++i) {
      WriteBits(1, 1);
    }
    WriteBits(0, 1);
  }

  size_t bit_size() const {
    return bytes_.size() * 8 - (bit_pos_ == 0 ? 0 : 8 - bit_pos_);
  }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
  int bit_pos_ = 0;  // next free bit within bytes_.back(); 0 means byte boundary
};

// Reads values written by BitWriter. Reading past the end returns zeros; callers track
// logical length themselves (the codec stores counts in its header).
class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint64_t ReadBits(int bits) {
    PRESTO_DCHECK(bits >= 0 && bits <= 64);
    uint64_t value = 0;
    for (int i = 0; i < bits; ++i) {
      const size_t byte = pos_ >> 3;
      const int bit = static_cast<int>(pos_ & 7);
      if (byte < bytes_.size() && ((bytes_[byte] >> bit) & 1)) {
        value |= (1ULL << i);
      }
      ++pos_;
    }
    return value;
  }

  int ReadUnary() {
    int n = 0;
    while (ReadBits(1) == 1) {
      ++n;
    }
    return n;
  }

  size_t bit_pos() const { return pos_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace presto

#endif  // SRC_UTIL_BITPACK_H_
