#include "src/util/result.h"

namespace presto {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "kNotFound";
    case StatusCode::kInvalidArgument:
      return "kInvalidArgument";
    case StatusCode::kResourceExhausted:
      return "kResourceExhausted";
    case StatusCode::kUnavailable:
      return "kUnavailable";
    case StatusCode::kDeadlineExceeded:
      return "kDeadlineExceeded";
    case StatusCode::kFailedPrecondition:
      return "kFailedPrecondition";
    case StatusCode::kOutOfRange:
      return "kOutOfRange";
    case StatusCode::kDataLoss:
      return "kDataLoss";
    case StatusCode::kInternal:
      return "kInternal";
  }
  return "kUnknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace presto
