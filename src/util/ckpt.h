// Versioned checkpoint container + generic state codec.
//
// A Checkpoint is an ordered list of named byte sections, one per subsystem
// ("cell0/sim", "cell0/proxy/3", "fed", ...). Each section carries an FNV-1a checksum
// over its payload; Decode verifies every checksum before returning, so a corrupted
// file can never partially restore — the error names the first bad section. On top of
// full snapshots the container supports barrier-to-barrier diffs: EncodeDiffFrom emits
// only the sections whose bytes changed against a base checkpoint (plus removals), and
// ApplyDiff overlays them back, with the base's digest pinned in the diff header so a
// diff can never be applied to the wrong base.
//
// CkptWrite/CkptRead are the generic field codecs subsystems compose their
// SaveState/LoadState from: varint integers (zigzag when signed), fixed-width floats
// (state must round-trip exactly — never re-quantize through the lossy wire formats),
// strings, and recursively the standard containers. All reads are bounds-checked
// through ByteReader; a truncated section is an error, never UB.

#ifndef SRC_UTIL_CKPT_H_
#define SRC_UTIL_CKPT_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/hash.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/sample.h"
#include "src/util/span.h"
#include "src/util/stats.h"

namespace presto {

// FNV-1a over raw bytes — the per-section checksum.
inline uint64_t CkptChecksum(span<const uint8_t> bytes) {
  uint64_t fp = kFnvOffsetBasis;
  for (const uint8_t b : bytes) {
    fp = (fp ^ b) * kFnvPrime;
  }
  return fp;
}

// ---------------------------------------------------------------------------
// Generic field codec. CkptWrite(w, v) appends; CkptRead(r, v) parses into v and
// returns a Status (bounds-checked, propagate with CKPT_READ).
// ---------------------------------------------------------------------------

inline void CkptWrite(ByteWriter& w, bool v) { w.WriteU8(v ? 1 : 0); }
inline Status CkptRead(ByteReader& r, bool& v) {
  auto byte = r.ReadU8();
  if (!byte.ok()) {
    return byte.status();
  }
  v = (*byte != 0);
  return OkStatus();
}

template <typename T,
          std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool> &&
                               std::is_unsigned_v<T>,
                           int> = 0>
void CkptWrite(ByteWriter& w, T v) {
  w.WriteVarU64(static_cast<uint64_t>(v));
}
template <typename T,
          std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool> &&
                               std::is_unsigned_v<T>,
                           int> = 0>
Status CkptRead(ByteReader& r, T& v) {
  auto raw = r.ReadVarU64();
  if (!raw.ok()) {
    return raw.status();
  }
  v = static_cast<T>(*raw);
  return OkStatus();
}

template <typename T,
          std::enable_if_t<std::is_integral_v<T> && std::is_signed_v<T>, int> = 0>
void CkptWrite(ByteWriter& w, T v) {
  w.WriteVarI64(static_cast<int64_t>(v));
}
template <typename T,
          std::enable_if_t<std::is_integral_v<T> && std::is_signed_v<T>, int> = 0>
Status CkptRead(ByteReader& r, T& v) {
  auto raw = r.ReadVarI64();
  if (!raw.ok()) {
    return raw.status();
  }
  v = static_cast<T>(*raw);
  return OkStatus();
}

template <typename E, std::enable_if_t<std::is_enum_v<E>, int> = 0>
void CkptWrite(ByteWriter& w, E v) {
  w.WriteVarU64(static_cast<uint64_t>(static_cast<std::underlying_type_t<E>>(v)));
}
template <typename E, std::enable_if_t<std::is_enum_v<E>, int> = 0>
Status CkptRead(ByteReader& r, E& v) {
  auto raw = r.ReadVarU64();
  if (!raw.ok()) {
    return raw.status();
  }
  v = static_cast<E>(static_cast<std::underlying_type_t<E>>(*raw));
  return OkStatus();
}

inline void CkptWrite(ByteWriter& w, float v) { w.WriteF32(v); }
inline Status CkptRead(ByteReader& r, float& v) {
  auto raw = r.ReadF32();
  if (!raw.ok()) {
    return raw.status();
  }
  v = *raw;
  return OkStatus();
}

inline void CkptWrite(ByteWriter& w, double v) { w.WriteF64(v); }
inline Status CkptRead(ByteReader& r, double& v) {
  auto raw = r.ReadF64();
  if (!raw.ok()) {
    return raw.status();
  }
  v = *raw;
  return OkStatus();
}

inline void CkptWrite(ByteWriter& w, const std::string& v) { w.WriteString(v); }
inline Status CkptRead(ByteReader& r, std::string& v) {
  auto raw = r.ReadString();
  if (!raw.ok()) {
    return raw.status();
  }
  v = std::move(*raw);
  return OkStatus();
}

// Status round-trips by (code, message) — codes outside the enum are data loss.
inline void CkptWrite(ByteWriter& w, const Status& v) {
  w.WriteVarU64(static_cast<uint64_t>(v.code()));
  w.WriteString(v.message());
}
inline Status CkptRead(ByteReader& r, Status& v) {
  auto code = r.ReadVarU64();
  if (!code.ok()) {
    return code.status();
  }
  if (*code > static_cast<uint64_t>(StatusCode::kInternal)) {
    return DataLossError("ckpt: status code out of range");
  }
  std::string message;
  PRESTO_RETURN_IF_ERROR(CkptRead(r, message));
  v = Status(static_cast<StatusCode>(*code), std::move(message));
  return OkStatus();
}

inline void CkptWrite(ByteWriter& w, const std::vector<uint8_t>& v) {
  w.WriteBytes(span<const uint8_t>(v));
}
inline Status CkptRead(ByteReader& r, std::vector<uint8_t>& v) {
  auto raw = r.ReadBytes();
  if (!raw.ok()) {
    return raw.status();
  }
  v = std::move(*raw);
  return OkStatus();
}

// Exact generator state (PCG state + increment + the Box-Muller cache).
inline void CkptWrite(ByteWriter& w, const Pcg32& rng) {
  const Pcg32::State s = rng.SaveState();
  w.WriteU64(s.state);
  w.WriteU64(s.inc);
  CkptWrite(w, s.has_cached_gaussian);
  w.WriteF64(s.cached_gaussian);
}
inline Status CkptRead(ByteReader& r, Pcg32& rng) {
  Pcg32::State s;
  auto state = r.ReadU64();
  if (!state.ok()) {
    return state.status();
  }
  auto inc = r.ReadU64();
  if (!inc.ok()) {
    return inc.status();
  }
  s.state = *state;
  s.inc = *inc;
  PRESTO_RETURN_IF_ERROR(CkptRead(r, s.has_cached_gaussian));
  auto cached = r.ReadF64();
  if (!cached.ok()) {
    return cached.status();
  }
  s.cached_gaussian = *cached;
  rng.LoadState(s);
  return OkStatus();
}

// Exact raw samples; the lazily-sorted order is presentation state, not data.
inline void CkptWrite(ByteWriter& w, const SampleSet& s) {
  w.WriteVarU64(s.samples().size());
  for (const double x : s.samples()) {
    w.WriteF64(x);
  }
}
inline Status CkptRead(ByteReader& r, SampleSet& s) {
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > r.remaining()) {
    return DataLossError("ckpt: sample-set length exceeds section bytes");
  }
  s = SampleSet();
  s.Reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    auto x = r.ReadF64();
    if (!x.ok()) {
      return x.status();
    }
    s.Add(*x);
  }
  return OkStatus();
}

inline void CkptWrite(ByteWriter& w, const Sample& s) {
  CkptWrite(w, s.t);
  w.WriteF64(s.value);
}
inline Status CkptRead(ByteReader& r, Sample& s) {
  PRESTO_RETURN_IF_ERROR(CkptRead(r, s.t));
  auto value = r.ReadF64();
  if (!value.ok()) {
    return value.status();
  }
  s.value = *value;
  return OkStatus();
}

inline void CkptWrite(ByteWriter& w, const TimeInterval& v) {
  CkptWrite(w, v.start);
  CkptWrite(w, v.end);
}
inline Status CkptRead(ByteReader& r, TimeInterval& v) {
  PRESTO_RETURN_IF_ERROR(CkptRead(r, v.start));
  PRESTO_RETURN_IF_ERROR(CkptRead(r, v.end));
  return OkStatus();
}

template <typename A, typename B>
void CkptWrite(ByteWriter& w, const std::pair<A, B>& v) {
  CkptWrite(w, v.first);
  CkptWrite(w, v.second);
}
template <typename A, typename B>
Status CkptRead(ByteReader& r, std::pair<A, B>& v) {
  PRESTO_RETURN_IF_ERROR(CkptRead(r, v.first));
  PRESTO_RETURN_IF_ERROR(CkptRead(r, v.second));
  return OkStatus();
}

template <typename T>
void CkptWrite(ByteWriter& w, const std::vector<T>& v) {
  w.WriteVarU64(v.size());
  for (const T& item : v) {
    CkptWrite(w, item);
  }
}
template <typename T>
Status CkptRead(ByteReader& r, std::vector<T>& v) {
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > r.remaining()) {  // every element costs >= 1 byte
    return DataLossError("ckpt: vector length exceeds section bytes");
  }
  v.clear();
  v.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    T item{};
    PRESTO_RETURN_IF_ERROR(CkptRead(r, item));
    v.push_back(std::move(item));
  }
  return OkStatus();
}

template <typename T>
void CkptWrite(ByteWriter& w, const std::deque<T>& v) {
  w.WriteVarU64(v.size());
  for (const T& item : v) {
    CkptWrite(w, item);
  }
}
template <typename T>
Status CkptRead(ByteReader& r, std::deque<T>& v) {
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > r.remaining()) {
    return DataLossError("ckpt: deque length exceeds section bytes");
  }
  v.clear();
  for (uint64_t i = 0; i < *count; ++i) {
    T item{};
    PRESTO_RETURN_IF_ERROR(CkptRead(r, item));
    v.push_back(std::move(item));
  }
  return OkStatus();
}

template <typename T, size_t N>
void CkptWrite(ByteWriter& w, const std::array<T, N>& v) {
  for (const T& item : v) {
    CkptWrite(w, item);
  }
}
template <typename T, size_t N>
Status CkptRead(ByteReader& r, std::array<T, N>& v) {
  for (size_t i = 0; i < N; ++i) {
    PRESTO_RETURN_IF_ERROR(CkptRead(r, v[i]));
  }
  return OkStatus();
}

template <typename K, typename V>
void CkptWrite(ByteWriter& w, const std::map<K, V>& v) {
  w.WriteVarU64(v.size());
  for (const auto& [key, value] : v) {
    CkptWrite(w, key);
    CkptWrite(w, value);
  }
}
template <typename K, typename V>
Status CkptRead(ByteReader& r, std::map<K, V>& v) {
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > r.remaining()) {
    return DataLossError("ckpt: map length exceeds section bytes");
  }
  v.clear();
  for (uint64_t i = 0; i < *count; ++i) {
    K key{};
    V value{};
    PRESTO_RETURN_IF_ERROR(CkptRead(r, key));
    PRESTO_RETURN_IF_ERROR(CkptRead(r, value));
    v.emplace(std::move(key), std::move(value));
  }
  return OkStatus();
}

// Propagates a failed CkptRead out of a Status-returning LoadState.
#define CKPT_READ(reader, field) \
  PRESTO_RETURN_IF_ERROR(::presto::CkptRead((reader), (field)))

// ---------------------------------------------------------------------------
// Checkpoint container.
// ---------------------------------------------------------------------------

class Checkpoint {
 public:
  struct Section {
    std::string name;
    std::vector<uint8_t> payload;
  };

  // Current (and only) on-disk format version. Decode rejects other versions: the
  // compat rule is "same version or re-simulate" — checkpoints are replay artifacts,
  // not archival data, so no cross-version migration is attempted. v2: the
  // federation "fed" section moved to the process-seam layout (per-cell FedCell
  // blobs under "cell<i>/fed", payload-carrying trunk mail, cell-down bitmap).
  static constexpr uint32_t kVersion = 2;

  // Appends (or replaces) a named section.
  void Add(const std::string& name, std::vector<uint8_t> payload);

  // The section payload, or nullptr when absent.
  const std::vector<uint8_t>* Find(const std::string& name) const;

  const std::vector<Section>& sections() const { return sections_; }

  // Order-sensitive digest over every (name, checksum) — identifies a checkpoint for
  // diff base pinning and quick equality checks.
  uint64_t Digest() const;

  // Full snapshot framing: "PCK1" magic, version, section table with per-section
  // FNV checksums.
  std::vector<uint8_t> Encode() const;

  // Parses and verifies a full snapshot. Every section checksum is checked before any
  // state is handed back — a corrupted section fails the whole decode with its name.
  static Result<Checkpoint> Decode(span<const uint8_t> data);

  // Diff framing: "PCKD" magic, base digest, removed section names, changed/added
  // sections. Applying the result to `base` reproduces *this exactly.
  std::vector<uint8_t> EncodeDiffFrom(const Checkpoint& base) const;

  // Overlays a diff onto its base (digest-checked), returning the target checkpoint.
  static Result<Checkpoint> ApplyDiff(const Checkpoint& base, span<const uint8_t> diff);

  // Section names whose payloads differ (or that exist on only one side), in this
  // checkpoint's section order followed by sections only `other` has. The first entry
  // is the first divergent subsystem in save order — the bisect starting point.
  std::vector<std::string> DivergentSections(const Checkpoint& other) const;

  Status WriteFile(const std::string& path) const;
  static Result<Checkpoint> ReadFile(const std::string& path);

 private:
  std::vector<Section> sections_;
  std::map<std::string, size_t> index_;
};

}  // namespace presto

#endif  // SRC_UTIL_CKPT_H_
