// Fixed-capacity ring buffer. The PRESTO sensor keeps its recent-sample window (for
// model checks and batching) in one of these so RAM use is bounded, mirroring a mote's
// constraints. Header-only.

#ifndef SRC_UTIL_RING_BUFFER_H_
#define SRC_UTIL_RING_BUFFER_H_

#include <cstddef>
#include <vector>

#include "src/util/assert.h"

namespace presto {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : buffer_(capacity) {
    PRESTO_CHECK(capacity > 0);
  }

  // Appends an element, overwriting the oldest when full.
  void Push(const T& value) {
    buffer_[(start_ + size_) % Capacity()] = value;
    if (size_ == Capacity()) {
      start_ = (start_ + 1) % Capacity();
    } else {
      ++size_;
    }
  }

  // Element i, 0 = oldest retained.
  const T& operator[](size_t i) const {
    PRESTO_DCHECK(i < size_);
    return buffer_[(start_ + i) % Capacity()];
  }

  const T& Back() const {
    PRESTO_DCHECK(size_ > 0);
    return (*this)[size_ - 1];
  }

  void Clear() {
    start_ = 0;
    size_ = 0;
  }

  size_t size() const { return size_; }
  size_t Capacity() const { return buffer_.size(); }
  bool Empty() const { return size_ == 0; }
  bool Full() const { return size_ == Capacity(); }

  // Copies contents oldest-first into a vector (for handing a batch to the codec).
  std::vector<T> ToVector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      out.push_back((*this)[i]);
    }
    return out;
  }

 private:
  std::vector<T> buffer_;
  size_t start_ = 0;
  size_t size_ = 0;
};

}  // namespace presto

#endif  // SRC_UTIL_RING_BUFFER_H_
