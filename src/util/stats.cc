#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"

namespace presto {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double sq = 0.0;
  for (double s : samples_) {
    sq += (s - m) * (s - m);
  }
  return std::sqrt(sq / static_cast<double>(samples_.size()));
}

double SampleSet::min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::Quantile(double q) const {
  PRESTO_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo) {
  PRESTO_CHECK(buckets > 0 && hi > lo);
  width_ = (hi - lo) / buckets;
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double x) {
  int i = static_cast<int>((x - lo_) / width_);
  i = std::clamp(i, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(i)];
  ++count_;
}

std::string Histogram::ToString(int max_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char label[64];
  for (size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(label, sizeof(label), "%10.3g | ", BucketLow(static_cast<int>(i)));
    out += label;
    const int bar = static_cast<int>(counts_[i] * max_width / peak);
    out.append(static_cast<size_t>(bar), '#');
    std::snprintf(label, sizeof(label), " %lld\n", static_cast<long long>(counts_[i]));
    out += label;
  }
  return out;
}

double Rmse(const std::vector<double>& a, const std::vector<double>& b) {
  PRESTO_CHECK(a.size() == b.size());
  if (a.empty()) {
    return 0.0;
  }
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(a.size()));
}

double MeanAbsError(const std::vector<double>& a, const std::vector<double>& b) {
  PRESTO_CHECK(a.size() == b.size());
  if (a.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(a[i] - b[i]);
  }
  return sum / static_cast<double>(a.size());
}

double MaxAbsError(const std::vector<double>& a, const std::vector<double>& b) {
  PRESTO_CHECK(a.size() == b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace presto
