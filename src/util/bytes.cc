#include "src/util/bytes.h"

namespace presto {

void ByteWriter::WriteU8(uint8_t v) { buffer_.push_back(v); }

void ByteWriter::WriteU16(uint16_t v) {
  WriteU8(static_cast<uint8_t>(v));
  WriteU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::WriteU32(uint32_t v) {
  WriteU16(static_cast<uint16_t>(v));
  WriteU16(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::WriteU64(uint64_t v) {
  WriteU32(static_cast<uint32_t>(v));
  WriteU32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::WriteF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU32(bits);
}

void ByteWriter::WriteF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteVarU64(uint64_t v) {
  while (v >= 0x80) {
    WriteU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  WriteU8(static_cast<uint8_t>(v));
}

void ByteWriter::WriteVarI64(int64_t v) {
  const uint64_t zigzag =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  WriteVarU64(zigzag);
}

void ByteWriter::WriteBytes(span<const uint8_t> bytes) {
  WriteVarU64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::WriteString(const std::string& s) {
  WriteBytes(span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

Result<uint8_t> ByteReader::ReadU8() {
  if (!Need(1)) {
    return OutOfRangeError("ByteReader: buffer exhausted");
  }
  return data_[pos_++];
}

Result<uint16_t> ByteReader::ReadU16() {
  if (!Need(2)) {
    return OutOfRangeError("ByteReader: buffer exhausted");
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  if (!Need(4)) {
    return OutOfRangeError("ByteReader: buffer exhausted");
  }
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (!Need(8)) {
    return OutOfRangeError("ByteReader: buffer exhausted");
  }
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::ReadI64() {
  auto v = ReadU64();
  if (!v.ok()) {
    return v.status();
  }
  return static_cast<int64_t>(*v);
}

Result<float> ByteReader::ReadF32() {
  auto bits = ReadU32();
  if (!bits.ok()) {
    return bits.status();
  }
  float v;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

Result<double> ByteReader::ReadF64() {
  auto bits = ReadU64();
  if (!bits.ok()) {
    return bits.status();
  }
  double v;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

Result<uint64_t> ByteReader::ReadVarU64() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (!Need(1)) {
      return OutOfRangeError("ByteReader: truncated varint");
    }
    if (shift >= 64) {
      return InvalidArgumentError("ByteReader: varint too long");
    }
    const uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

Result<int64_t> ByteReader::ReadVarI64() {
  auto zigzag = ReadVarU64();
  if (!zigzag.ok()) {
    return zigzag.status();
  }
  return static_cast<int64_t>((*zigzag >> 1) ^ (~(*zigzag & 1) + 1));
}

Result<std::vector<uint8_t>> ByteReader::ReadBytes() {
  auto len = ReadVarU64();
  if (!len.ok()) {
    return len.status();
  }
  if (!Need(*len)) {
    return OutOfRangeError("ByteReader: truncated byte array");
  }
  std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                           data_.begin() + static_cast<ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

Result<std::string> ByteReader::ReadString() {
  auto bytes = ReadBytes();
  if (!bytes.ok()) {
    return bytes.status();
  }
  return std::string(bytes->begin(), bytes->end());
}

}  // namespace presto
