// Surveillance scenario (paper §1/§6): "the ability to retroactively 'go back' is
// necessary to determine, for instance, how an intruder broke into a building."
//
//   ./examples/surveillance
//
// Eight motion sensors guard a corridor. Background readings are boringly predictable,
// so model-driven push keeps the radio almost always off — yet the moment an intruder
// trips a sensor, the model fails and the deviation is pushed immediately. Days later,
// a forensic PAST query pulls the full event log out of the sensors' flash archives and
// reconstructs the intruder's path, in order, across sensors.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "src/core/deployment.h"
#include "src/index/temporal_merge.h"
#include "src/util/logging.h"
#include "src/workload/events.h"

using namespace presto;

int main() {
  SetLogLevel(LogLevel::kWarn);

  SurveillanceParams world;
  world.num_sensors = 8;
  world.events_per_day = 0.6;
  world.seed = 2024;
  auto workload = std::make_shared<SurveillanceWorkload>(world);

  DeploymentConfig config;
  config.num_proxies = 2;  // one per corridor wing
  config.sensors_per_proxy = 4;
  config.policy = PushPolicy::kModelDriven;
  config.model_tolerance = 1.0;  // motion units
  config.sensing_period = Seconds(5);  // motion sensors sample fast
  config.engine.model_type = ModelType::kMarkov;  // regime-style signal
  config.engine.min_training_span = Hours(12);
  config.model_config.markov_states = 6;
  config.model_config.sample_period = config.sensing_period;
  config.seed = 11;

  Deployment deployment(config, [workload](int sensor_index) {
    return [workload, sensor_index](SimTime t) {
      return workload->ReadingAt(sensor_index, t);
    };
  });
  deployment.Start();

  std::printf(
      "== Surveillance: 8 motion sensors, model-driven push, flash forensics ==\n\n");
  deployment.RunUntil(Days(4));

  // --- 1. Did the intrusions reach the proxies as they happened? ---
  const auto intrusions = workload->EventsIn(TimeInterval{Days(1), Days(4)});
  std::printf("Intrusions in days 1-4: %zu\n", intrusions.size());
  for (const IntrusionEvent& intrusion : intrusions) {
    const int proxy_index = intrusion.entry_sensor / config.sensors_per_proxy;
    const NodeId sensor_id = Deployment::SensorId(
        proxy_index, intrusion.entry_sensor % config.sensors_per_proxy);
    const auto entries =
        deployment.proxy(proxy_index)
            .cache(sensor_id)
            ->RangeEntries({intrusion.start, intrusion.start + Minutes(5)});
    SimTime first_report = -1;
    for (const auto& entry : entries) {
      if (entry.source != CacheSource::kExtrapolated && entry.value > 4.0) {
        first_report = entry.inserted_at;
        break;
      }
    }
    if (first_report >= 0) {
      std::printf("  intrusion #%llu at %s: pushed to proxy within %s\n",
                  static_cast<unsigned long long>(intrusion.id),
                  FormatTime(intrusion.start).c_str(),
                  FormatDuration(first_report - intrusion.start).c_str());
    } else {
      std::printf("  intrusion #%llu at %s: NOT reported (!)\n",
                  static_cast<unsigned long long>(intrusion.id),
                  FormatTime(intrusion.start).c_str());
    }
  }

  // --- 2. Forensics: reconstruct the path of the last intrusion from flash. ---
  if (!intrusions.empty()) {
    const IntrusionEvent& suspect = intrusions.back();
    std::printf("\nForensic PAST queries around intrusion #%llu (%s)...\n",
                static_cast<unsigned long long>(suspect.id),
                FormatTime(suspect.start).c_str());
    std::vector<std::vector<Detection>> streams;
    for (int g = 0; g < 8; ++g) {
      QuerySpec spec;
      spec.type = QueryType::kPast;
      spec.sensor_id = Deployment::SensorId(g / 4, g % 4);
      spec.range = TimeInterval{suspect.start - Minutes(1),
                                suspect.start + suspect.duration + Minutes(1)};
      spec.tolerance = 0.5;
      UnifiedQueryResult result = deployment.QueryAndWait(spec);
      if (!result.answer.status.ok()) {
        continue;
      }
      std::vector<Detection> detections;
      for (const Sample& s : result.answer.samples) {
        if (s.value > 4.0) {
          detections.push_back(Detection{s.t, static_cast<uint32_t>(g), 0});
        }
      }
      std::printf("  sensor %d: %zu samples (%s), %zu above threshold\n", g,
                  result.answer.samples.size(), AnswerSourceName(result.answer.source),
                  detections.size());
      streams.push_back(std::move(detections));
    }
    const auto merged = MergeByTime(streams);
    std::printf("\nReconstructed path (time-ordered sensor visits): ");
    uint32_t last = UINT32_MAX;
    for (const Detection& d : merged) {
      if (d.source != last) {
        std::printf("%u ", d.source);
        last = d.source;
      }
    }
    std::printf("\nGround-truth path:                              ");
    for (int s : suspect.path) {
      std::printf("%d ", s);
    }
    std::printf("\n");
  }

  // --- 3. What did staying vigilant cost? ---
  deployment.net().SettleIdleEnergy();
  std::printf("\nMean sensor energy over 4 days: %.2f J (%.2f J/day)\n",
              deployment.MeanSensorEnergy(), deployment.MeanSensorEnergy() / 4.0);
  SensorNode& s0 = deployment.sensor(0, 0);
  std::printf("sensor 0: %llu samples, %llu pushed (%.2f%%)\n",
              static_cast<unsigned long long>(s0.stats().samples),
              static_cast<unsigned long long>(s0.stats().pushed_samples),
              100.0 * static_cast<double>(s0.stats().pushed_samples) /
                  static_cast<double>(std::max<uint64_t>(s0.stats().samples, 1)));
  return 0;
}
