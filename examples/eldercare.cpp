// Elder-care / activity-monitoring scenario (paper §6): "daily activity patterns tend
// to be mostly predictable, with occasional unpredictable events or patterns that need
// to be explicitly reported to proxies."
//
//   ./examples/eldercare
//
// A wearable activity sensor samples motion intensity every 30 s. The daily routine
// (sleep, meals, walks) is captured by a Markov model, so almost nothing is
// transmitted — until a fall or a missed meal breaks the pattern and is pushed at once.
// The caregiver dashboard asks NOW queries with a 1-minute latency bound; query-sensor
// matching turns that into an appropriately aggressive radio duty cycle.

#include <cstdio>
#include <memory>

#include "src/core/deployment.h"
#include "src/util/logging.h"
#include "src/workload/activity.h"

using namespace presto;

int main() {
  SetLogLevel(LogLevel::kWarn);
  std::printf("== Eldercare: predictable routine, unpredictable falls ==\n\n");

  ActivityParams world;
  world.seed = 97;
  world.anomalies_per_week = 6.0;
  auto subject = std::make_shared<ActivitySignal>(world);

  DeploymentConfig config;
  config.num_proxies = 1;  // home gateway
  config.sensors_per_proxy = 1;
  config.sensing_period = Seconds(30);
  config.policy = PushPolicy::kModelDriven;
  config.model_tolerance = 1.5;  // activity-level units
  // Seasonal bins learn the *times* of meals and walks — required to notice a missing
  // meal (a time-homogeneous model cannot detect the absence of expected activity).
  config.engine.model_type = ModelType::kSeasonalAr;
  config.engine.min_training_span = Hours(26);
  config.model_config.seasonal_bins = 96;  // 15-minute bins resolve the routine
  config.model_config.sample_period = config.sensing_period;
  config.enable_matcher = true;  // caregiver latency needs retune the duty cycle
  config.seed = 55;

  Deployment deployment(config, [subject](int) {
    return [subject](SimTime t) { return subject->ValueAt(t); };
  });
  deployment.Start();
  deployment.RunUntil(Days(7));

  SensorNode& wearable = deployment.sensor(0, 0);
  const double pushed_pct = 100.0 *
                            static_cast<double>(wearable.stats().pushed_samples) /
                            static_cast<double>(wearable.stats().samples);
  std::printf("Week one: %llu samples, %.1f%% transmitted (model: %s)\n",
              static_cast<unsigned long long>(wearable.stats().samples), pushed_pct,
              wearable.model() != nullptr ? wearable.model()->Name() : "none");

  // --- were the anomalies reported promptly? ---
  const auto anomalies = subject->AnomaliesIn(TimeInterval{Days(2), Days(7)});
  std::printf("\nAnomalies after the model settled (days 2-7): %zu\n", anomalies.size());
  const SummaryCache* cache = deployment.proxy(0).cache(Deployment::SensorId(0, 0));
  for (const ActivityAnomaly& anomaly : anomalies) {
    const char* kind =
        anomaly.kind == ActivityAnomaly::Kind::kFall ? "FALL" : "missed meal";
    SimTime reported = -1;
    for (const auto& entry :
         cache->RangeEntries({anomaly.start, anomaly.start + Minutes(15)})) {
      if (entry.source != CacheSource::kExtrapolated) {
        reported = entry.inserted_at;
        break;
      }
    }
    if (reported >= 0) {
      std::printf("  %-12s at %s -> pushed within %s\n", kind,
                  FormatTime(anomaly.start).c_str(),
                  FormatDuration(reported - anomaly.start).c_str());
    } else {
      std::printf("  %-12s at %s -> not reported within 15 min (!)\n", kind,
                  FormatTime(anomaly.start).c_str());
    }
  }

  // --- caregiver dashboard: NOW queries with a tight latency bound ---
  std::printf("\nCaregiver NOW queries (tolerance 2.0, latency bound 60 s):\n");
  for (int i = 0; i < 3; ++i) {
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = Deployment::SensorId(0, 0);
    spec.tolerance = 2.0;
    spec.latency_bound = Seconds(60);
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    if (result.answer.status.ok()) {
      std::printf("  activity=%.1f (source=%s, err<=%.2f, latency=%s)\n",
                  result.answer.value, AnswerSourceName(result.answer.source),
                  result.answer.error_estimate, FormatDuration(result.Latency()).c_str());
    }
    deployment.RunUntil(deployment.sim().Now() + Minutes(30));
  }

  // --- what the matcher did with the latency needs ---
  std::printf("\nRadio duty cycle after query-sensor matching: LPL interval %s\n",
              FormatDuration(deployment.net().LplInterval(Deployment::SensorId(0, 0)))
                  .c_str());
  deployment.net().SettleIdleEnergy();
  std::printf("Wearable energy over 7 days: %s\n", wearable.meter().Breakdown().c_str());
  return 0;
}
