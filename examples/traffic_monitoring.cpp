// Commuter-traffic scenario (paper §1/§6): "commuters can query the system to obtain
// quick responses"; the data abstraction must provide "a single temporally ordered view
// of detections across distributed proxies and sensors" (§5).
//
//   ./examples/traffic_monitoring
//
// Six roadside detectors (two proxies, three per proxy) count vehicles in 5-minute
// bins. The count series has a strong rush-hour pattern, so PRESTO's seasonal model
// answers commuter NOW queries without touching the sensors. Separately, per-vehicle
// detections with drifting sensor clocks are merged into a single ordered view using
// the regression time sync and k-way temporal merge.

#include <cstdio>
#include <memory>

#include "src/core/deployment.h"
#include "src/index/temporal_merge.h"
#include "src/index/time_sync.h"
#include "src/util/logging.h"
#include "src/util/table.h"
#include "src/workload/traffic.h"

using namespace presto;

int main() {
  SetLogLevel(LogLevel::kWarn);
  std::printf(
      "== Traffic monitoring: rush-hour counts + ordered vehicle detections ==\n\n");

  // --- the vehicle world ---
  TrafficParams world;
  world.seed = 5150;
  auto gen = std::make_shared<TrafficGenerator>(world);
  const TimeInterval horizon{0, Days(5)};
  auto vehicles = std::make_shared<std::vector<Vehicle>>(gen->GenerateVehicles(horizon));
  const Duration bin = Minutes(5);
  auto counts =
      std::make_shared<std::vector<Sample>>(gen->CountSeries(*vehicles, horizon, bin));
  std::printf("Generated %zu vehicles over 5 days (peak rate %.0f/h)\n", vehicles->size(),
              gen->RatePerHour(world.morning_peak));

  // --- PRESTO deployment: sensors measure the count series ---
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 3;
  config.sensing_period = bin;
  config.policy = PushPolicy::kModelDriven;
  config.model_tolerance = 4.0;  // vehicles per bin
  config.engine.model_type = ModelType::kSeasonalAr;
  config.engine.min_training_span = Hours(26);
  config.engine.min_training_samples = 24;
  config.model_config.sample_period = bin;
  config.model_config.seasonal_bins = 48;  // half-hour bins catch the rush shape
  config.seed = 31;

  Deployment deployment(config, [counts, bin](int sensor_index) {
    // All detectors see the same arterial flow, offset by a small station bias.
    return [counts, bin, sensor_index](SimTime t) {
      const size_t i =
          std::min(static_cast<size_t>(t / bin), counts->size() - 1);
      return (*counts)[i].value * (1.0 + 0.03 * sensor_index);
    };
  });
  deployment.Start();
  deployment.RunUntil(Days(3) + Hours(17.5));  // evening rush on day 3

  // --- commuter NOW queries during the evening rush ---
  std::printf("\nCommuter queries at day 3, 17:30 (evening rush):\n");
  for (int g = 0; g < 3; ++g) {
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = Deployment::SensorId(g / 3, g % 3);
    spec.tolerance = 8.0;
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    if (result.answer.status.ok()) {
      std::printf("  detector %d: %.0f vehicles/5min (source=%s, latency=%s)\n", g,
                  result.answer.value, AnswerSourceName(result.answer.source),
                  FormatDuration(result.Latency()).c_str());
    }
  }
  const ProxyStats& stats = deployment.proxy(0).stats();
  std::printf("proxy 1 so far: %llu pushes received; mean sensor energy %.1f J\n",
              static_cast<unsigned long long>(stats.pushes_received),
              deployment.MeanSensorEnergy());

  // --- the ordered single view: per-vehicle detections across drifting clocks ---
  std::printf("\nSingle temporally ordered view of per-vehicle detections:\n");
  const auto streams = gen->DetectionsAt(*vehicles, 6, 150.0);

  // Each detector stamps with its own drifting clock; each proxy corrects via
  // regression sync (beacons every 10 minutes), then the merge orders globally.
  std::vector<std::vector<Detection>> corrected(6);
  std::vector<std::vector<Detection>> uncorrected(6);
  Pcg32 rng(77);
  for (int d = 0; d < 6; ++d) {
    DriftingClock clock(static_cast<Duration>(rng.UniformInt(0, Seconds(3))),
                        rng.Uniform(-60.0, 60.0), Millis(4), 1000 + d);
    RegressionTimeSync sync;
    for (SimTime beacon = 0; beacon < Days(1); beacon += Minutes(10)) {
      sync.AddBeacon(clock.LocalTime(beacon), beacon);
    }
    for (const VehicleDetection& det : streams[static_cast<size_t>(d)]) {
      if (det.t >= Days(1) || det.t < Hours(23)) {
        continue;  // a one-hour window is plenty for the demo
      }
      const SimTime stamped = clock.LocalTime(det.t);
      uncorrected[d].push_back(
          Detection{stamped, static_cast<uint32_t>(d), det.vehicle_id});
      const auto fixed = sync.Correct(stamped);
      corrected[d].push_back(Detection{fixed.ok() ? *fixed : stamped,
                                       static_cast<uint32_t>(d), det.vehicle_id});
    }
  }
  // Ground-truth order = detection order on detector 0..5 interleaved by true time; use
  // sequence = vehicle id ordering per detector pair. For the metric we re-tag sequence
  // by true time order.
  auto tag_sequences = [&streams](std::vector<std::vector<Detection>>& sets) {
    // Build true ordering over the same window from streams.
    std::vector<std::pair<SimTime, std::pair<uint32_t, uint64_t>>> truth;
    for (int d = 0; d < 6; ++d) {
      for (const VehicleDetection& det : streams[static_cast<size_t>(d)]) {
        if (det.t >= Days(1) || det.t < Hours(23)) {
          continue;
        }
        truth.emplace_back(det.t,
                           std::make_pair(static_cast<uint32_t>(d), det.vehicle_id));
      }
    }
    std::sort(truth.begin(), truth.end());
    std::map<std::pair<uint32_t, uint64_t>, uint64_t> rank;
    for (size_t i = 0; i < truth.size(); ++i) {
      rank[truth[i].second] = i;
    }
    for (auto& stream : sets) {
      for (Detection& det : stream) {
        det.sequence = rank[{det.source, det.sequence}];
      }
    }
  };
  tag_sequences(corrected);
  tag_sequences(uncorrected);

  const auto merged_raw = MergeByTime(uncorrected);
  const auto merged_fixed = MergeByTime(corrected);
  std::printf("  detections merged: %zu\n", merged_fixed.size());
  std::printf("  order accuracy without clock correction: %.3f (Kendall tau %.3f)\n",
              AdjacentOrderAccuracy(merged_raw), KendallTau(merged_raw));
  std::printf("  order accuracy with regression time sync: %.3f (Kendall tau %.3f)\n",
              AdjacentOrderAccuracy(merged_fixed), KendallTau(merged_fixed));
  return 0;
}
