// Quickstart: build a small PRESTO deployment, let it learn, and query it.
//
//   ./examples/quickstart
//
// Two tethered proxies manage eight battery-powered temperature sensors. Sensors
// archive everything locally in flash and push only what their proxy-installed model
// cannot predict. We then issue NOW and PAST queries through the unified store and
// print where each answer came from (cache / model extrapolation / sensor pull), what
// it cost, and how the sensors' energy was spent.

#include <cstdio>

#include "src/core/architectures.h"
#include "src/core/deployment.h"
#include "src/util/logging.h"
#include "src/util/table.h"

using namespace presto;

namespace {

void PrintResult(const char* label, const UnifiedQueryResult& result) {
  const QueryAnswer& answer = result.answer;
  if (!answer.status.ok()) {
    std::printf("%-28s FAILED: %s\n", label, answer.status.ToString().c_str());
    return;
  }
  std::printf("%-28s value=%6.2fC  source=%-12s  err<=%.2fC  latency=%s  via proxy"
              " %u%s\n",
              label, answer.value, AnswerSourceName(answer.source),
              answer.error_estimate,
              FormatDuration(result.Latency()).c_str(), result.served_by,
              result.used_replica ? " (replica)" : "");
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarn);

  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 4;
  config.policy = PushPolicy::kModelDriven;
  config.model_tolerance = 0.5;  // sensors stay silent while the model is within 0.5 C
  config.engine.model_type = ModelType::kSeasonalAr;
  config.seed = 7;

  Deployment deployment(config);
  deployment.Start();

  std::printf("== PRESTO quickstart: 2 proxies x 4 sensors, 31 s sampling ==\n\n");
  std::printf("Running 2 simulated days (sensors bootstrap, proxies fit models)...\n");
  deployment.RunUntil(Days(2));

  SensorNode& s00 = deployment.sensor(0, 0);
  std::printf("sensor(0,0) after 2 days: %llu samples, %llu pushes (%.1f%% suppressed), "
              "model=%s\n\n",
              static_cast<unsigned long long>(s00.stats().samples),
              static_cast<unsigned long long>(s00.stats().pushes),
              100.0 * static_cast<double>(s00.stats().suppressed) /
                  static_cast<double>(s00.stats().samples),
              s00.model() != nullptr ? s00.model()->Name() : "(none yet)");

  // --- NOW queries ---
  QuerySpec now_loose;
  now_loose.type = QueryType::kNow;
  now_loose.sensor_id = Deployment::SensorId(0, 0);
  now_loose.tolerance = 1.0;  // loose: the model's guarantee suffices
  PrintResult("NOW (tolerance 1.0C):", deployment.QueryAndWait(now_loose));

  QuerySpec now_tight = now_loose;
  now_tight.tolerance = 0.05;  // tighter than the push threshold: forces a sensor pull
  PrintResult("NOW (tolerance 0.05C):", deployment.QueryAndWait(now_tight));

  // --- PAST queries ---
  QuerySpec past;
  past.type = QueryType::kPast;
  past.sensor_id = Deployment::SensorId(1, 2);
  past.range = TimeInterval{Hours(30), Hours(30) + Minutes(30)};
  past.tolerance = 1.0;
  PrintResult("PAST 30h ago (tol 1.0C):", deployment.QueryAndWait(past));

  QuerySpec past_tight = past;
  past_tight.range = TimeInterval{Hours(40), Hours(40) + Minutes(30)};
  past_tight.tolerance = 0.05;
  PrintResult("PAST 40h ago (tol 0.05C):", deployment.QueryAndWait(past_tight));

  // --- where did the energy go? ---
  deployment.net().SettleIdleEnergy();
  std::printf("\nsensor(0,0) energy: %s\n", s00.meter().Breakdown().c_str());
  std::printf("sensor(0,0) archive: %d free blocks, %llu records\n",
              s00.archive().FreeBlocks(),
              static_cast<unsigned long long>(s00.archive().stats().records_appended));

  const ProxyStats& proxy_stats = deployment.proxy(0).stats();
  std::printf("proxy 1: %llu pushes received, %llu queries (%llu hits, "
              "%llu extrapolated, %llu pulls), %llu model sends\n",
              static_cast<unsigned long long>(proxy_stats.pushes_received),
              static_cast<unsigned long long>(proxy_stats.queries),
              static_cast<unsigned long long>(proxy_stats.cache_hits),
              static_cast<unsigned long long>(proxy_stats.extrapolations),
              static_cast<unsigned long long>(proxy_stats.pulls),
              static_cast<unsigned long long>(proxy_stats.model_sends));
  return 0;
}
