// presto_cell: the federation's per-process cell worker.
//
// Never run by hand — a Federation with cell_processes > 1 forks one per
// process slot, passing its end of a socketpair as argv[1]. Everything else
// (config, hosted cells, stepping) arrives as fed_wire frames; see
// src/core/cell_worker.h for the protocol.

#include <cstdio>
#include <cstdlib>

#include "src/core/cell_worker.h"
#include "src/net/fed_wire.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: presto_cell <socket-fd>\n"
                 "(spawned by a presto Federation; not meant to run by hand)\n");
    return 2;
  }
  const int fd = std::atoi(argv[1]);
  if (fd <= 2) {  // refuse stdio and garbage ("0" from non-numeric input)
    std::fprintf(stderr, "presto_cell: bad socket fd '%s'\n", argv[1]);
    return 2;
  }
  presto::FrameChannel channel(fd);
  presto::CellWorker worker(&channel);
  return worker.Serve();
}
