// presto_cell: the federation's per-process cell worker.
//
// Two bootstrap modes share one worker loop:
//
//   presto_cell <socket-fd>          fork mode. A Federation with
//                                    cell_processes > 1 forks one per process
//                                    slot, passing its end of a socketpair as
//                                    argv[1]. Never run by hand.
//
//   presto_cell --listen <port>      socket mode. Binds 0.0.0.0:<port> (0 picks
//                [--once]            an ephemeral port), announces
//                                    `PRESTO_CELL_LISTENING <port>` on stdout,
//                                    and serves orchestrator connections — this
//                                    is what runs on the other machines named in
//                                    FederationConfig::cell_endpoints. --once
//                                    exits after the first connection ends.
//
// Everything else (config, hosted cells, stepping) arrives as fed_wire frames;
// see src/core/cell_worker.h for the protocol.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/cell_worker.h"
#include "src/net/fed_wire.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: presto_cell <socket-fd>\n"
               "       presto_cell --listen <port> [--once]\n"
               "(fd mode is spawned by a presto Federation; --listen hosts\n"
               " cells for a FederationConfig::cell_endpoints orchestrator)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--listen") == 0) {
    bool once = false;
    if (argc == 4 && std::strcmp(argv[3], "--once") == 0) {
      once = true;
    } else if (argc != 3) {
      return Usage();
    }
    char* end = nullptr;
    const long port = std::strtol(argv[2], &end, 10);
    if (end == argv[2] || *end != '\0' || port < 0 || port > 65535) {
      std::fprintf(stderr, "presto_cell: bad listen port '%s'\n", argv[2]);
      return 2;
    }
    // 5s covers any real handshake while bounding a half-open or slow-loris
    // connector; the orchestrator's own connect deadline is typically longer.
    return presto::RunCellWorkerListenLoop(static_cast<uint16_t>(port),
                                           presto::Seconds(5), once);
  }
  if (argc != 2) {
    return Usage();
  }
  const int fd = std::atoi(argv[1]);
  if (fd <= 2) {  // refuse stdio and garbage ("0" from non-numeric input)
    std::fprintf(stderr, "presto_cell: bad socket fd '%s'\n", argv[1]);
    return 2;
  }
  presto::FrameChannel channel(fd);
  presto::CellWorker worker(&channel);
  return worker.Serve();
}
