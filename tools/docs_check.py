#!/usr/bin/env python3
"""Repo documentation checks (the CI `docs-check` job).

1. Knob-table coverage: every field of the config structs listed in STRUCTS must be
   mentioned (as `field`) in README.md — the knob reference table cannot silently
   fall behind a struct change.
2. Markdown links: intra-repo links in every tracked *.md file must resolve.
   External schemes, pure anchors, and paths that escape the repo (e.g. the GitHub
   badge's ../../actions/... trick) are skipped — they cannot be validated locally.
3. Bench catalog: docs/BENCHMARKS.md must mention every bench binary built from
   bench/*.cc (as `bench_<name>`) — a new bench cannot land undocumented.
4. Bench JSON schema: the schema keys documented in docs/BENCHMARKS.md (the
   backticked first column of its schema table) must equal kBenchReportSchemaKeys
   in bench/bench_report.h — the schema doc and the emitter cannot drift apart.
5. Baseline validation: the checked-in repo-root BENCH_*.json trajectory baselines
   must actually conform to schema v1 — version match, required top-level keys,
   rows with unique keys, section names drawn from the declared key set, and
   fingerprints as "0x%016x" hex strings.

Exits non-zero with one line per problem.
"""

import glob
import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# (header path, struct name) pairs whose fields the README knob tables must cover.
STRUCTS = [
    ("src/core/deployment.h", "DeploymentConfig"),
    ("src/core/federation.h", "FederationConfig"),
    ("src/net/cell_link.h", "CellLinkParams"),
]

MEMBER_RE = re.compile(
    r"^\s*(?:[A-Za-z_][\w:]*(?:<[^;=]*>)?[\s&*]+)+([A-Za-z_]\w*)\s*(?:=[^;]*)?;\s*(?://.*)?$"
)
LINK_RE = re.compile(r"\[[^\]^]*\]\(([^)\s]+)\)")


def struct_fields(path, name):
    """Field names of `struct name { ... };` in `path` (top-level members only)."""
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        text = f.read()
    match = re.search(r"struct\s+%s\s*\{" % re.escape(name), text)
    if not match:
        raise SystemExit(f"docs_check: struct {name} not found in {path}")
    depth = 1
    body = []
    for line in text[match.end():].splitlines():
        stripped = line.split("//", 1)[0]
        if depth == 1:
            body.append(line)
        depth += stripped.count("{") - stripped.count("}")
        if depth <= 0:
            break
    fields = []
    for line in body:
        m = MEMBER_RE.match(line)
        if m and not line.lstrip().startswith("//"):
            fields.append(m.group(1))
    if not fields:
        raise SystemExit(f"docs_check: no fields parsed for {name} in {path}")
    return fields


def check_knob_tables(problems):
    with open(os.path.join(REPO, "README.md"), encoding="utf-8") as f:
        readme = f.read()
    for path, name in STRUCTS:
        for field in struct_fields(path, name):
            if f"`{field}`" not in readme:
                problems.append(
                    f"README.md: {name}::{field} ({path}) missing from the knob table"
                )


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [
            d for d in dirs
            if not d.startswith(".") and not d.startswith("build")
        ]
        for f in files:
            if f.endswith(".md"):
                yield os.path.join(root, f)


def check_markdown_links(problems):
    for md in markdown_files():
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:  # pure anchor
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(md), target_path))
            if not resolved.startswith(REPO + os.sep):
                continue  # escapes the repo (badge URLs): not validatable locally
            if not os.path.exists(resolved):
                problems.append(
                    f"{os.path.relpath(md, REPO)}: broken link -> {target}"
                )


# Shared bench helpers, not binaries: excluded from the catalog requirement.
BENCH_HELPERS = {"bench_report", "micro_main"}

# Rows of the BENCHMARKS.md schema table look like "| `key` | top level | ...".
# Parsed only inside the schema section (other catalog tables also backtick their
# first column).
SCHEMA_ROW_RE = re.compile(r"^\|\s*`(\w+)`\s*\|", re.MULTILINE)
SCHEMA_HEADING_RE = re.compile(r"^##[^\n]*schema[^\n]*$", re.IGNORECASE | re.MULTILINE)


def bench_targets():
    bench_dir = os.path.join(REPO, "bench")
    return sorted(
        os.path.splitext(f)[0]
        for f in os.listdir(bench_dir)
        if f.endswith(".cc") and os.path.splitext(f)[0] not in BENCH_HELPERS
    )


def schema_keys():
    with open(os.path.join(REPO, "bench", "bench_report.h"), encoding="utf-8") as f:
        text = f.read()
    match = re.search(r"kBenchReportSchemaKeys\[\]\s*=\s*\{(.*?)\};", text, re.DOTALL)
    if not match:
        raise SystemExit("docs_check: kBenchReportSchemaKeys not found in "
                         "bench/bench_report.h")
    keys = re.findall(r'"([^"]+)"', match.group(1))
    if not keys:
        raise SystemExit("docs_check: kBenchReportSchemaKeys parsed empty")
    return keys


def check_benchmarks_doc(problems):
    path = os.path.join(REPO, "docs", "BENCHMARKS.md")
    if not os.path.exists(path):
        problems.append("docs/BENCHMARKS.md: missing (bench catalog required)")
        return
    with open(path, encoding="utf-8") as f:
        text = f.read()
    for target in bench_targets():
        if f"`bench_{target}`" not in text:
            problems.append(
                f"docs/BENCHMARKS.md: bench_{target} (bench/{target}.cc) missing "
                "from the catalog"
            )
    heading = SCHEMA_HEADING_RE.search(text)
    if not heading:
        problems.append(
            "docs/BENCHMARKS.md: no '## ... schema ...' section (schema table required)"
        )
        return
    section = text[heading.end():]
    next_heading = re.search(r"^## ", section, re.MULTILINE)
    if next_heading:
        section = section[:next_heading.start()]
    documented = set(SCHEMA_ROW_RE.findall(section))
    declared = set(schema_keys())
    for key in sorted(declared - documented):
        problems.append(
            f"docs/BENCHMARKS.md: schema key `{key}` (bench/bench_report.h) not "
            "documented in the schema table"
        )
    for key in sorted(documented - declared):
        problems.append(
            f"docs/BENCHMARKS.md: schema table documents `{key}` which is not in "
            "bench/bench_report.h kBenchReportSchemaKeys"
        )


def schema_version():
    with open(os.path.join(REPO, "bench", "bench_report.h"), encoding="utf-8") as f:
        text = f.read()
    match = re.search(r"kBenchReportSchemaVersion\s*=\s*(\d+)", text)
    if not match:
        raise SystemExit("docs_check: kBenchReportSchemaVersion not found in "
                         "bench/bench_report.h")
    return int(match.group(1))


# Of the declared schema keys, these are top-level document keys; the rest are
# per-row section names. "key" appears in both spots ("key" is per-row only).
BASELINE_REQUIRED_TOP = ["schema_version", "bench", "grid", "rows"]
BASELINE_OPTIONAL_TOP = ["config"]
FINGERPRINT_RE = re.compile(r"^0x[0-9a-f]{16}$")


def check_bench_baselines(problems):
    """The checked-in BENCH_*.json baselines must conform to the declared schema."""
    declared = set(schema_keys())
    row_sections = declared - set(BASELINE_REQUIRED_TOP) - {"key"}
    version = schema_version()
    for path in sorted(glob.glob(os.path.join(REPO, "BENCH_*.json"))):
        rel = os.path.relpath(path, REPO)
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            problems.append(f"{rel}: unreadable baseline ({err})")
            continue
        for key in BASELINE_REQUIRED_TOP:
            if key not in report:
                problems.append(f"{rel}: missing required top-level key `{key}`")
        if report.get("schema_version") != version:
            problems.append(
                f"{rel}: schema_version {report.get('schema_version')!r} != "
                f"bench_report.h kBenchReportSchemaVersion ({version})"
            )
        for key in report:
            if key not in BASELINE_REQUIRED_TOP + BASELINE_OPTIONAL_TOP:
                problems.append(f"{rel}: undeclared top-level key `{key}`")
        rows = report.get("rows")
        if not isinstance(rows, list) or not rows:
            problems.append(f"{rel}: `rows` must be a non-empty array")
            continue
        seen = set()
        for i, row in enumerate(rows):
            where = f"{rel} rows[{i}]"
            if not isinstance(row, dict) or not isinstance(row.get("key"), str):
                problems.append(f"{where}: row must be an object with a string `key`")
                continue
            if row["key"] in seen:
                problems.append(f"{where}: duplicate row key `{row['key']}`")
            seen.add(row["key"])
            for section in row:
                if section != "key" and section not in row_sections:
                    problems.append(f"{where}: undeclared row section `{section}`")
            for name, value in row.get("fingerprints", {}).items():
                if not isinstance(value, str) or not FINGERPRINT_RE.match(value):
                    problems.append(
                        f"{where}: fingerprint `{name}` must be a 0x%016x hex "
                        f"string, got {value!r}"
                    )


def main():
    problems = []
    check_knob_tables(problems)
    check_markdown_links(problems)
    check_benchmarks_doc(problems)
    check_bench_baselines(problems)
    for p in problems:
        print(p)
    if problems:
        print(f"docs_check: {len(problems)} problem(s)")
        return 1
    print("docs_check: knob tables complete, markdown links resolve, "
          "baselines validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
