#!/usr/bin/env python3
"""Non-blocking bench trajectory check: fresh BENCH_*.json vs the checked-in baseline.

Usage: tools/bench_compare.py <baseline.json> <new.json> [--threshold 0.2]
           [--latency-threshold 0.05] [--fail-on-regression]

Rows are matched by their "key". Two families of comparison:

- Throughput metrics (higher is better): a drop beyond --threshold prints a
  WARNING. These depend on host speed, so the default run is advisory.
- Latency histogram percentiles (the "latency_ms" section: mean/p50/p95/p99...,
  lower is better): an increase beyond --latency-threshold prints a WARNING.
  Latencies are *simulated* time — deterministic for a given seed and code, not
  a function of the machine — so the default tolerance is much tighter; any
  drift at all means the model's behaviour changed and the baseline needs a
  deliberate refresh.

The exit code is 0 unless --fail-on-regression is passed (local A/B runs on one
machine, or latency-only gating where host speed cannot be the cause).
"""

import json
import sys

# Higher-is-better rates; absolute counters are not compared.
THROUGHPUT_METRICS = ("events_per_s", "queries_per_s", "queries_per_min")


def load_rows(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return doc, {row["key"]: row for row in doc.get("rows", [])}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 0.2
    latency_threshold = 0.05
    fail_on_regression = "--fail-on-regression" in argv
    for i, arg in enumerate(argv):
        if arg == "--threshold" and i + 1 < len(argv):
            threshold = float(argv[i + 1])
            args = [a for a in args if a != argv[i + 1]]
        if arg == "--latency-threshold" and i + 1 < len(argv):
            latency_threshold = float(argv[i + 1])
            args = [a for a in args if a != argv[i + 1]]
    if len(args) != 2:
        print(__doc__)
        return 2
    baseline_doc, baseline = load_rows(args[0])
    new_doc, new = load_rows(args[1])
    if baseline_doc.get("bench") != new_doc.get("bench"):
        print(f"bench_compare: comparing different benches "
              f"({baseline_doc.get('bench')} vs {new_doc.get('bench')})")

    warnings = 0
    compared = 0
    latency_compared = 0
    for key, base_row in sorted(baseline.items()):
        new_row = new.get(key)
        if new_row is None:
            print(f"note: row '{key}' in baseline but not in the new run "
                  f"(grid {baseline_doc.get('grid')} vs {new_doc.get('grid')})")
            continue
        for metric in THROUGHPUT_METRICS:
            base_value = base_row.get("metrics", {}).get(metric)
            new_value = new_row.get("metrics", {}).get(metric)
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            if not isinstance(new_value, (int, float)):
                continue
            compared += 1
            drop = 1.0 - new_value / base_value
            if drop > threshold:
                print(f"WARNING: {key}: {metric} {base_value:.3g} -> "
                      f"{new_value:.3g} ({100 * drop:.0f}% drop > "
                      f"{100 * threshold:.0f}% threshold)")
                warnings += 1
        # Latency percentiles: lower is better, and the values are simulated
        # time, so a warning here is a behaviour change, not a slow runner.
        base_lat = base_row.get("latency_ms", {})
        new_lat = new_row.get("latency_ms", {})
        for pct in sorted(base_lat):
            base_value = base_lat.get(pct)
            new_value = new_lat.get(pct)
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            if not isinstance(new_value, (int, float)):
                continue
            latency_compared += 1
            rise = new_value / base_value - 1.0
            if rise > latency_threshold:
                print(f"WARNING: {key}: latency {pct} {base_value:.4g}ms -> "
                      f"{new_value:.4g}ms (+{100 * rise:.1f}% > "
                      f"{100 * latency_threshold:.0f}% tolerance)")
                warnings += 1
    print(f"bench_compare: {compared} throughput metric(s) and "
          f"{latency_compared} latency percentile(s) compared, "
          f"{warnings} regression warning(s)")
    return 1 if (warnings and fail_on_regression) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
