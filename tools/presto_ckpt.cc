// presto_ckpt: inspect, verify, and diff PRESTO checkpoint files.
//
// Checkpoints are versioned section containers (src/util/ckpt.h): one named,
// FNV-checksummed section per subsystem, written at federation barriers by
// Deployment::SaveCheckpoint / Federation::SaveCheckpoint. This tool is the
// debugging entry point for the determinism contract: when two runs that should be
// bit-identical are not, `diff` names the first subsystem section (in save order)
// whose bytes diverge — the bisect starting point (tools/ckpt_bisect.py drives it
// across a barrier sequence).
//
//   presto_ckpt info <file>                 section table, sizes, digest
//   presto_ckpt verify <file>               decode + checksum every section
//   presto_ckpt diff <a> <b>                divergent sections, first = bisect hint
//   presto_ckpt delta <base> <target> <out> barrier-to-barrier diff (PCKD) file
//   presto_ckpt apply <base> <delta> <out>  overlay a delta back into a snapshot
//
// Exit codes: 0 success (diff: identical), 1 usage/IO/corruption, 2 diff found
// divergence.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/util/ckpt.h"

namespace {

using presto::Checkpoint;

int Fail(const std::string& message) {
  std::fprintf(stderr, "presto_ckpt: %s\n", message.c_str());
  return 1;
}

bool ReadRaw(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

bool WriteRaw(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

int Info(const std::string& path) {
  auto ckpt = Checkpoint::ReadFile(path);
  if (!ckpt.ok()) {
    return Fail(path + ": " + ckpt.status().message());
  }
  size_t total = 0;
  std::printf("%-32s %12s\n", "section", "bytes");
  for (const Checkpoint::Section& section : ckpt->sections()) {
    std::printf("%-32s %12zu\n", section.name.c_str(), section.payload.size());
    total += section.payload.size();
  }
  std::printf("%zu sections, %zu payload bytes, digest %016llx\n",
              ckpt->sections().size(), total,
              static_cast<unsigned long long>(ckpt->Digest()));
  return 0;
}

int Verify(const std::string& path) {
  // ReadFile decodes the full container: every section checksum is verified and a
  // corrupted section fails the decode with its name in the status message.
  auto ckpt = Checkpoint::ReadFile(path);
  if (!ckpt.ok()) {
    return Fail(path + ": " + ckpt.status().message());
  }
  std::printf("%s: ok (%zu sections, digest %016llx)\n", path.c_str(),
              ckpt->sections().size(),
              static_cast<unsigned long long>(ckpt->Digest()));
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  auto a = Checkpoint::ReadFile(path_a);
  if (!a.ok()) {
    return Fail(path_a + ": " + a.status().message());
  }
  auto b = Checkpoint::ReadFile(path_b);
  if (!b.ok()) {
    return Fail(path_b + ": " + b.status().message());
  }
  const std::vector<std::string> divergent = a->DivergentSections(*b);
  if (divergent.empty()) {
    std::printf("identical (digest %016llx)\n",
                static_cast<unsigned long long>(a->Digest()));
    return 0;
  }
  std::printf("first divergent section: %s\n", divergent.front().c_str());
  if (divergent.size() > 1) {
    std::printf("all divergent sections (%zu):\n", divergent.size());
    for (const std::string& name : divergent) {
      std::printf("  %s\n", name.c_str());
    }
  }
  return 2;
}

int Delta(const std::string& base_path, const std::string& target_path,
          const std::string& out_path) {
  auto base = Checkpoint::ReadFile(base_path);
  if (!base.ok()) {
    return Fail(base_path + ": " + base.status().message());
  }
  auto target = Checkpoint::ReadFile(target_path);
  if (!target.ok()) {
    return Fail(target_path + ": " + target.status().message());
  }
  const std::vector<uint8_t> diff = target->EncodeDiffFrom(*base);
  if (!WriteRaw(out_path, diff)) {
    return Fail("cannot write " + out_path);
  }
  std::printf("%s: %zu bytes (base digest %016llx -> target digest %016llx)\n",
              out_path.c_str(), diff.size(),
              static_cast<unsigned long long>(base->Digest()),
              static_cast<unsigned long long>(target->Digest()));
  return 0;
}

int Apply(const std::string& base_path, const std::string& delta_path,
          const std::string& out_path) {
  auto base = Checkpoint::ReadFile(base_path);
  if (!base.ok()) {
    return Fail(base_path + ": " + base.status().message());
  }
  std::vector<uint8_t> delta;
  if (!ReadRaw(delta_path, &delta)) {
    return Fail("cannot read " + delta_path);
  }
  auto target =
      Checkpoint::ApplyDiff(*base, presto::span<const uint8_t>(delta));
  if (!target.ok()) {
    return Fail(delta_path + ": " + target.status().message());
  }
  const presto::Status written = target->WriteFile(out_path);
  if (!written.ok()) {
    return Fail(out_path + ": " + written.message());
  }
  std::printf("%s: %zu sections, digest %016llx\n", out_path.c_str(),
              target->sections().size(),
              static_cast<unsigned long long>(target->Digest()));
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: presto_ckpt info <file>\n"
               "       presto_ckpt verify <file>\n"
               "       presto_ckpt diff <a> <b>\n"
               "       presto_ckpt delta <base> <target> <out>\n"
               "       presto_ckpt apply <base> <delta> <out>\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc >= 2 ? argv[1] : "";
  if (command == "info" && argc == 3) {
    return Info(argv[2]);
  }
  if (command == "verify" && argc == 3) {
    return Verify(argv[2]);
  }
  if (command == "diff" && argc == 4) {
    return Diff(argv[2], argv[3]);
  }
  if (command == "delta" && argc == 5) {
    return Delta(argv[2], argv[3], argv[4]);
  }
  if (command == "apply" && argc == 5) {
    return Apply(argv[2], argv[3], argv[4]);
  }
  return Usage();
}
