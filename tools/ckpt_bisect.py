#!/usr/bin/env python3
"""Bisect two barrier-checkpoint sequences to the first divergent barrier.

When two runs that should replay bit-identically do not, dump a checkpoint per
federation barrier from each run (bench/federation_scale --ckpt-out, or any driver
calling Federation::SaveCheckpoint on the barrier grid) into two directories with
matching file names (e.g. barrier_000120.ckpt). This script binary-searches the
sequence for the first barrier whose checkpoints differ — divergence is monotone:
once the replay forks, every later barrier differs — then asks `presto_ckpt diff`
to name the first divergent subsystem section at that barrier, which is the
subsystem to read first.

    tools/ckpt_bisect.py --tool build/presto_ckpt run_a/ run_b/

Exit codes: 0 sequences identical, 2 divergence found (details on stdout),
1 usage or tooling error.
"""

import argparse
import os
import subprocess
import sys


def run_diff(tool, a, b):
    """Returns (divergent: bool, first_section: str|None)."""
    proc = subprocess.run(
        [tool, "diff", a, b], capture_output=True, text=True, check=False
    )
    if proc.returncode == 0:
        return False, None
    if proc.returncode == 2:
        first = None
        for line in proc.stdout.splitlines():
            if line.startswith("first divergent section:"):
                first = line.split(":", 1)[1].strip()
                break
        return True, first
    sys.stderr.write(proc.stderr or proc.stdout)
    raise RuntimeError(f"presto_ckpt diff failed on {a} vs {b}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tool",
        default="build/presto_ckpt",
        help="path to the presto_ckpt binary (default: build/presto_ckpt)",
    )
    parser.add_argument("dir_a", help="checkpoint directory from run A")
    parser.add_argument("dir_b", help="checkpoint directory from run B")
    args = parser.parse_args()

    names_a = {f for f in os.listdir(args.dir_a) if f.endswith(".ckpt")}
    names_b = {f for f in os.listdir(args.dir_b) if f.endswith(".ckpt")}
    common = sorted(names_a & names_b)
    if not common:
        sys.stderr.write("ckpt_bisect: no matching *.ckpt file names\n")
        return 1
    for only, where in ((names_a - names_b, args.dir_b), (names_b - names_a, args.dir_a)):
        if only:
            print(f"note: {len(only)} checkpoint(s) missing from {where}: "
                  f"{', '.join(sorted(only)[:5])}")

    # Binary search for the first divergent barrier (divergence is monotone in
    # barrier order for deterministic replays).
    lo, hi = 0, len(common) - 1
    last_diverged, _ = run_diff(
        args.tool, os.path.join(args.dir_a, common[hi]), os.path.join(args.dir_b, common[hi])
    )
    if not last_diverged:
        print(f"identical across all {len(common)} barrier checkpoints")
        return 0
    while lo < hi:
        mid = (lo + hi) // 2
        diverged, _ = run_diff(
            args.tool,
            os.path.join(args.dir_a, common[mid]),
            os.path.join(args.dir_b, common[mid]),
        )
        if diverged:
            hi = mid
        else:
            lo = mid + 1
    first_file = common[lo]
    _, section = run_diff(
        args.tool, os.path.join(args.dir_a, first_file), os.path.join(args.dir_b, first_file)
    )
    print(f"first divergent barrier: {first_file}")
    print(f"first divergent section: {section}")
    if lo > 0:
        print(f"last identical barrier:  {common[lo - 1]}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
